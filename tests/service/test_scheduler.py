"""LeaseBoard unit tests: claim ordering, heartbeats, TTL stealing."""

import pytest

from repro.exceptions import ConfigurationError, ServiceError
from repro.service import LeaseBoard


class FakeClock:
    """Injectable wall clock so leases expire without sleeping."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def board(tmp_path, clock):
    LeaseBoard.initialize(tmp_path / "leases.json", n_chunks=3)
    return LeaseBoard(tmp_path / "leases.json", ttl=10.0, clock=clock)


class TestInitialize:
    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ConfigurationError):
            LeaseBoard.initialize(tmp_path / "l.json", n_chunks=0)

    def test_rejects_bad_ttl(self, tmp_path):
        with pytest.raises(ConfigurationError):
            LeaseBoard(tmp_path / "l.json", ttl=0.0)

    def test_missing_table_raises(self, tmp_path):
        with pytest.raises(ServiceError):
            LeaseBoard(tmp_path / "nope.json").claim("w")

    def test_unknown_schema_raises(self, tmp_path):
        path = tmp_path / "l.json"
        LeaseBoard.initialize(path, n_chunks=1)
        from repro.io import load_json_guarded, save_json_guarded

        doc = load_json_guarded(path)
        doc["schema"] = 99
        save_json_guarded(doc, path)  # valid checksum, future schema
        with pytest.raises(ServiceError):
            LeaseBoard(path).claim("w")


class TestClaim:
    def test_chunks_claimed_in_order_without_overlap(self, board):
        a = board.claim("alice")
        b = board.claim("bob")
        c = board.claim("alice")
        assert [lease.chunk_id for lease in (a, b, c)] == [0, 1, 2]
        assert board.claim("carol") is None

    def test_claim_sets_deadline(self, board, clock):
        lease = board.claim("alice")
        assert lease.deadline == clock.now + 10.0
        assert not lease.stolen

    def test_done_chunks_never_reclaimed(self, board, clock):
        lease = board.claim("alice")
        board.complete(lease.chunk_id, "alice")
        board.claim("bob")
        board.claim("bob")
        clock.advance(1e6)  # even long after every deadline
        extra = board.claim("carol")
        assert extra is None or extra.chunk_id != lease.chunk_id


class TestRenewAndSteal:
    def test_renew_extends_deadline(self, board, clock):
        lease = board.claim("alice")
        clock.advance(8.0)
        assert board.renew(lease.chunk_id, "alice")
        clock.advance(8.0)  # 16s total: dead without the renewal
        assert board.claim("bob").chunk_id != lease.chunk_id

    def test_expired_lease_is_stolen(self, board, clock):
        lease = board.claim("alice")
        board.claim("bob")
        board.claim("bob")
        clock.advance(11.0)
        stolen = board.claim("carol")
        # All three are expired now; the first (alice's) goes first.
        assert stolen.chunk_id == lease.chunk_id
        assert stolen.stolen
        assert board.snapshot()["stolen"] == 1

    def test_fresh_lease_is_not_stolen(self, board, clock):
        board.claim("alice")
        board.claim("bob")
        board.claim("bob")
        clock.advance(5.0)
        assert board.claim("carol") is None

    def test_pending_preferred_over_expired(self, board, clock):
        board.claim("alice")
        clock.advance(11.0)  # alice's chunk 0 is now expired
        lease = board.claim("bob")
        assert lease.chunk_id == 1  # fresh work first
        assert not lease.stolen

    def test_original_holder_loses_renew_after_steal(self, board, clock):
        lease = board.claim("alice")
        board.claim("bob")
        board.claim("bob")
        clock.advance(11.0)
        assert board.claim("carol").stolen  # takes over alice's chunk 0
        assert not board.renew(lease.chunk_id, "alice")

    def test_renew_unknown_chunk_is_false(self, board):
        assert not board.renew(99, "alice")


class TestCompleteAndRelease:
    def test_release_returns_chunk_to_pending(self, board):
        lease = board.claim("alice")
        board.release(lease.chunk_id, "alice")
        again = board.claim("bob")
        assert again.chunk_id == lease.chunk_id
        assert not again.stolen

    def test_release_by_non_holder_is_noop(self, board):
        lease = board.claim("alice")
        board.release(lease.chunk_id, "bob")
        assert board.snapshot()["leased"] == 1

    def test_stale_complete_after_steal_is_harmless(self, board, clock):
        lease = board.claim("alice")
        clock.advance(11.0)
        board.claim("bob")  # steal
        board.complete(lease.chunk_id, "alice")  # alice finishes late
        snapshot = board.snapshot()
        assert snapshot["done"] == 1  # done is done; journal de-dups points

    def test_all_done(self, board):
        assert not board.all_done()
        for _ in range(3):
            lease = board.claim("w")
            board.complete(lease.chunk_id, "w")
        assert board.all_done()
        assert board.snapshot() == {
            "pending": 0,
            "leased": 0,
            "expired": 0,
            "done": 3,
            "quarantined": 0,
            "stolen": 0,
        }

    def test_snapshot_counts_expired(self, board, clock):
        board.claim("alice")
        clock.advance(11.0)
        snapshot = board.snapshot()
        assert snapshot["expired"] == 1
        assert snapshot["pending"] == 2


class TestQuarantine:
    def test_fail_repends_until_budget_spent_then_quarantines(self, board):
        # Default budget is 3 attempts; each claim consumes one.
        for attempt in (1, 2):
            lease = board.claim("w")
            assert lease.chunk_id == 0 and lease.attempts == attempt
            assert not board.fail(lease.chunk_id, "w", error=f"boom {attempt}")
            assert board.snapshot()["quarantined"] == 0
        lease = board.claim("w")
        assert lease.chunk_id == 0 and lease.attempts == 3
        assert board.fail(lease.chunk_id, "w", error="boom 3")
        snapshot = board.snapshot()
        assert snapshot["quarantined"] == 1 and snapshot["pending"] == 2
        verdict = board.quarantined_chunks()[0]
        assert verdict["attempts"] == 3
        assert verdict["error"] == "boom 3"

    def test_quarantined_chunk_is_never_reclaimed(self, board):
        for _ in range(3):
            lease = board.claim("w")
            board.fail(lease.chunk_id, "w", error="boom")
        claimed = {board.claim("w").chunk_id, board.claim("w").chunk_id}
        assert claimed == {1, 2}
        assert board.claim("w") is None

    def test_fail_by_non_holder_is_noop(self, board):
        lease = board.claim("alice")
        assert not board.fail(lease.chunk_id, "bob", error="not mine")
        assert board.snapshot()["leased"] == 1

    def test_repeatedly_dying_holders_exhaust_the_budget(self, board, clock):
        # Nobody ever calls fail(); the holders just stop heartbeating.
        # Steal after steal consumes the budget, then the scan
        # quarantines the chunk in place.
        for _ in range(3):
            board.claim("w1")  # every chunk leased; no pending work left
        for thief in ("w2", "w3"):
            clock.advance(11.0)
            lease = board.claim(thief)
            assert lease.chunk_id == 0 and lease.stolen
        clock.advance(11.0)
        lease = board.claim("w4")  # chunk 0's budget spent: steals chunk 1
        assert lease.chunk_id == 1 and lease.stolen
        assert board.snapshot()["quarantined"] == 1

    def test_all_resolved_mixes_done_and_quarantined(self, board):
        lease = board.claim("w")
        board.complete(lease.chunk_id, "w")
        for _ in range(3):
            lease = board.claim("w")
            board.fail(lease.chunk_id, "w", error="boom")
        for _ in range(3):
            lease = board.claim("w")
            board.fail(lease.chunk_id, "w", error="boom")
        assert not board.all_done()
        assert board.all_resolved()


class TestCorruptionRecovery:
    def test_corrupt_table_without_recover_raises(self, tmp_path):
        path = tmp_path / "leases.json"
        LeaseBoard.initialize(path, n_chunks=2)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])  # torn
        with pytest.raises(ServiceError, match="unreadable lease table"):
            LeaseBoard(path).claim("w")

    def test_corrupt_table_rebuilt_via_recover(self, tmp_path):
        from repro.service.scheduler import fresh_entry

        path = tmp_path / "leases.json"
        LeaseBoard.initialize(path, n_chunks=2)
        path.write_text("{definitely not json")
        board = LeaseBoard(
            path,
            recover=lambda: {
                "0": fresh_entry(state="done"),
                "1": fresh_entry(),
            },
        )
        lease = board.claim("w")
        assert lease.chunk_id == 1  # chunk 0 came back done from the journal
        assert board.recovered == 1
        # The rebuilt table is persisted: a fresh board reads it cleanly.
        assert LeaseBoard(path).snapshot()["done"] == 1
