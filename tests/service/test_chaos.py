"""Chaos battery: every injected failure mode ends in a terminal state.

The acceptance bar from DESIGN.md §13: under each chaos mode the job
must reach a terminal state (never hang), leave no live leases behind,
list every quarantined point, and keep the *surviving* points
bit-identical to the serial campaign's records.

All injection decisions are pure functions of ``(seed, site, token)``,
so every test here is deterministic: the seeds are picked by scanning
for one that produces the shape the test needs (e.g. a mixed
doomed/healthy grid), which is itself a deterministic computation.
"""

import pytest

from repro.exceptions import ChaosError, ConfigurationError
from repro.service import (
    CampaignJobSpec,
    CampaignService,
    ChaosConfig,
    ChaosController,
    JobStore,
    ServiceClient,
    ServiceWorker,
    chaos,
)
from repro.service.jobs import TERMINAL_STATES, failure_key


class TestChaosConfig:
    def test_disabled_by_default(self):
        config = ChaosConfig.from_env(env={})
        assert config.modes == ()
        assert not ChaosController(config).enabled

    def test_from_env_parses_modes_and_rates(self):
        config = ChaosConfig.from_env(
            env={
                "REPRO_CHAOS": "crash-point, corrupt-write",
                "REPRO_CHAOS_SEED": "7",
                "REPRO_CHAOS_CRASH_RATE": "0.9",
                "REPRO_CHAOS_SKEW": "2.5",
            }
        )
        assert config.modes == ("crash-point", "corrupt-write")
        assert config.seed == 7
        assert config.crash_rate == 0.9
        assert config.skew_s == 2.5

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos mode"):
            ChaosConfig(modes=("set-on-fire",))

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="crash_rate"):
            ChaosConfig(modes=("crash-point",), crash_rate=1.5)
        with pytest.raises(ConfigurationError, match="skew_s"):
            ChaosConfig(modes=("clock-skew",), skew_s=-1.0)


class TestDeterminism:
    def test_doomed_set_is_a_function_of_seed(self):
        keys = [f"key-{i}" for i in range(64)]
        a = ChaosController(ChaosConfig(modes=("crash-point",), seed=1))
        b = ChaosController(ChaosConfig(modes=("crash-point",), seed=1))
        c = ChaosController(ChaosConfig(modes=("crash-point",), seed=2))
        doomed = [k for k in keys if a.point_is_doomed(k)]
        assert doomed == [k for k in keys if b.point_is_doomed(k)]
        assert doomed != [k for k in keys if c.point_is_doomed(k)]
        assert 0 < len(doomed) < len(keys)

    def test_doomed_point_crashes_on_every_attempt(self):
        ctrl = ChaosController(ChaosConfig(modes=("crash-point",), seed=1))
        keys = (f"key-{i}" for i in range(64))
        doomed = next(k for k in keys if ctrl.point_is_doomed(k))
        for _ in range(3):
            with pytest.raises(ChaosError):
                ctrl.crash_point(doomed)
        assert ctrl.injected["crash-point"] == 3

    def test_corrupt_only_touches_coordination_files(self, tmp_path):
        ctrl = ChaosController(
            ChaosConfig(modes=("corrupt-write",), seed=0, corrupt_rate=1.0)
        )
        journal = tmp_path / "journal.jsonl"
        journal.write_text('{"k": 1}\n' * 4)
        assert not ctrl.corrupt_file(journal)  # ground truth is off-limits
        leases = tmp_path / "leases.json"
        leases.write_text('{"chunks": {"0": {"state": "pending"}}}')
        assert ctrl.corrupt_file(leases)
        assert ctrl.injected["corrupt-write"] == 1

    def test_drop_is_transient_per_attempt(self):
        ctrl = ChaosController(
            ChaosConfig(modes=("drop-response",), seed=0, drop_rate=0.5)
        )
        outcomes = []
        for attempt in range(1, 21):
            try:
                ctrl.drop_response("GET /api/info", attempt)
                outcomes.append(True)
            except ChaosError:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)

    def test_skew_is_bounded_and_per_identity(self):
        ctrl = ChaosController(ChaosConfig(modes=("clock-skew",), seed=0, skew_s=4.0))
        offsets = {w: ctrl.skew_for(w) for w in ("alice", "bob", "carol")}
        assert all(-4.0 <= o <= 4.0 for o in offsets.values())
        assert len(set(offsets.values())) > 1
        inactive = ChaosController(ChaosConfig())
        assert inactive.skew_for("alice") == 0.0


# -- battery helpers -------------------------------------------------------


def _drain(store, n_workers=1):
    """Drive n in-process workers to quiescence; returns the workers."""
    workers = [ServiceWorker(store, worker_id=f"w{i}") for i in range(n_workers)]
    progressed = True
    while progressed:
        progressed = False
        for worker in workers:
            progressed |= worker.run_once()
    return workers


def _submit_per_point_chunks(store, spec):
    return store.submit(CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1}))


def _assert_no_hung_leases(store, job_id):
    snapshot = store.leases(job_id).snapshot()
    assert snapshot["leased"] == 0 and snapshot["expired"] == 0
    assert snapshot["pending"] == 0
    assert store.leases(job_id).all_resolved()


def _surviving_records_match_golden(result, golden_report):
    golden = {r["point"]: r for r in golden_report.to_dict()["records"]}
    for record in result["records"]:
        if not record["failed"]:
            assert record == golden[record["point"]]


def _pick_mixed_crash_seed(keys):
    """First seed whose doomed set is non-empty but not the whole grid."""
    for seed in range(500):
        ctrl = ChaosController(ChaosConfig(modes=("crash-point",), seed=seed))
        doomed = [k for k in keys if ctrl.point_is_doomed(k)]
        if 0 < len(doomed) < len(keys):
            return seed, doomed
    pytest.fail("no mixed crash seed in range")


class TestCrashPointMode:
    def test_poison_points_quarantined_survivors_bit_identical(
        self, tmp_path, spec, golden_report
    ):
        store = JobStore(tmp_path)
        job_id = _submit_per_point_chunks(store, spec)
        document = store.load(job_id)
        keys = [p["key"] for p in document["points"]]
        seed, doomed = _pick_mixed_crash_seed(keys)
        chaos.configure(ChaosConfig(modes=("crash-point",), seed=seed))

        _drain(store)

        status = store.status(job_id)
        assert status.status == "completed_with_failures"
        assert status.failed == len(doomed)
        assert status.done == len(keys) - len(doomed)
        _assert_no_hung_leases(store, job_id)
        assert store.leases(job_id).snapshot()["quarantined"] == len(doomed)

        # Every doomed point has a structured failure record journaled
        # under its derived key, at the full attempt budget.
        journal = store.journal(job_id)
        doomed_names = set()
        for point_doc in document["points"]:
            if point_doc["key"] in doomed:
                record = journal.get(failure_key(point_doc["key"]))
                assert record["attempts"] == store.max_chunk_attempts
                assert "chaos" in record["error"]
                doomed_names.add(point_doc["name"])

        result = store.result(job_id)
        _surviving_records_match_golden(result, golden_report)
        assert set(result["failures"]) == doomed_names
        for record in result["records"]:
            assert record["failed"] == (record["point"] in doomed_names)
        assert chaos.controller().injected["crash-point"] > 0

    def test_all_points_doomed_still_terminates(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = _submit_per_point_chunks(store, spec)
        chaos.configure(ChaosConfig(modes=("crash-point",), seed=0, crash_rate=1.0))
        _drain(store)
        status = store.status(job_id)
        assert status.status == "completed_with_failures"
        assert status.failed == status.total == 3
        _assert_no_hung_leases(store, job_id)
        result = store.result(job_id)
        assert all(r["failed"] for r in result["records"])
        assert len(result["failures"]) == 3


class TestCorruptWriteMode:
    def test_corrupted_tables_rebuilt_and_result_bit_identical(
        self, tmp_path, spec, golden_report
    ):
        store = JobStore(tmp_path)
        job_id = _submit_per_point_chunks(store, spec)
        chaos.configure(
            ChaosConfig(modes=("corrupt-write",), seed=0, corrupt_rate=0.5)
        )
        _drain(store, n_workers=2)
        assert chaos.controller().injected.get("corrupt-write", 0) > 0
        assert store.recoveries > 0  # rebuilt from the journal at least once
        assert store.status(job_id).status == "done"
        _assert_no_hung_leases(store, job_id)
        assert store.result(job_id) == golden_report.to_dict()


class TestDropResponseMode:
    @staticmethod
    def _pick_drop_seed(routes, rate=0.5, budget=5):
        """First seed where every route gets through within the retry
        budget and at least one first attempt is dropped."""
        for seed in range(500):
            ctrl = ChaosController(
                ChaosConfig(modes=("drop-response",), seed=seed, drop_rate=rate)
            )

            def dropped(route, attempt):
                return ctrl._unit("drop-response", f"{route}/{attempt}") < rate

            if all(
                any(not dropped(r, a) for a in range(1, budget + 1)) for r in routes
            ) and any(dropped(r, 1) for r in routes):
                return seed
        pytest.fail("no suitable drop seed in range")

    def test_flaky_http_retries_through(self, tmp_path, spec, golden_report):
        job_id_predicted = spec.job_id()
        routes = (
            "POST /api/jobs",
            f"GET /api/jobs/{job_id_predicted}",
            f"GET /api/jobs/{job_id_predicted}/result",
            "GET /healthz",
        )
        seed = self._pick_drop_seed(routes)
        with CampaignService(tmp_path / "jobs", workers=0) as svc:
            chaos.configure(
                ChaosConfig(modes=("drop-response",), seed=seed, drop_rate=0.5)
            )
            client = ServiceClient(svc.url, timeout=10.0)
            job_id = client.submit(spec)
            assert job_id == job_id_predicted
            ServiceWorker(svc.store, worker_id="inline").drain()
            assert client.status(job_id)["status"] == "done"
            assert client.result(job_id) == golden_report.to_dict()
            assert client.healthz()["status"] == "ok"
        assert chaos.controller().injected.get("drop-response", 0) > 0


class TestClockSkewMode:
    def test_skewed_workers_still_converge_bit_identically(
        self, tmp_path, spec, golden_report
    ):
        store = JobStore(tmp_path, lease_ttl=60.0)
        job_id = _submit_per_point_chunks(store, spec)
        chaos.configure(ChaosConfig(modes=("clock-skew",), seed=3, skew_s=5.0))
        _drain(store, n_workers=2)
        assert chaos.controller().injected.get("clock-skew", 0) > 0
        assert store.status(job_id).status == "done"
        _assert_no_hung_leases(store, job_id)
        assert store.result(job_id) == golden_report.to_dict()


class TestCombinedModes:
    def test_full_storm_reaches_a_terminal_state(
        self, tmp_path, spec, golden_report
    ):
        """Crash + corruption + skew at once: the worst realistic day.

        Whatever the interleaving, the job must land on a terminal
        state with no live leases and bit-identical surviving points.
        """
        store = JobStore(tmp_path)
        job_id = _submit_per_point_chunks(store, spec)
        keys = [p["key"] for p in store.load(job_id)["points"]]
        seed, _doomed = _pick_mixed_crash_seed(keys)
        chaos.configure(
            ChaosConfig(
                modes=("crash-point", "corrupt-write", "clock-skew"),
                seed=seed,
                corrupt_rate=0.3,
                skew_s=2.0,
            )
        )
        _drain(store, n_workers=2)
        status = store.status(job_id)
        assert status.status in TERMINAL_STATES
        _assert_no_hung_leases(store, job_id)
        _surviving_records_match_golden(store.result(job_id), golden_report)
