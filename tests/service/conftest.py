"""Shared fixtures for the campaign service tests.

One tiny three-point campaign spec (blobs-mini fast, a single fault
rate) is reused everywhere, with its serial golden report computed once
per session — every service test asserts bit-identity against it.
"""

from __future__ import annotations

import pytest

from repro.service import CampaignJobSpec, chaos


@pytest.fixture(autouse=True)
def chaos_isolation():
    """Keep the process-global chaos controller out of unrelated tests."""
    chaos.reset()
    yield
    chaos.reset()


@pytest.fixture(scope="session")
def spec() -> CampaignJobSpec:
    return CampaignJobSpec(
        preset="blobs-mini", fast=True, kinds=("stuck_at",), rates=(0.01,)
    )


@pytest.fixture(scope="session")
def golden_report(spec):
    """Serial FaultCampaign over the same spec: the bit-identity anchor."""
    return spec.build_campaign(workers=1).run(spec.build_points())
