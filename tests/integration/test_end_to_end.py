"""Integration tests: the full paper pipeline at miniature scale.

These exercise the headline behaviours end-to-end — train, map, tune,
simulate lifetime, compare scenarios — on workloads small enough for
the test suite but real enough that the qualitative claims must hold.
"""

import numpy as np
import pytest

from repro import (
    AgingAwareFramework,
    DeviceConfig,
    FrameworkConfig,
    LifetimeConfig,
    MappedNetwork,
    OnlineTuner,
    SkewedTrainingConfig,
    TrainConfig,
    TuningConfig,
    make_glyph_digits,
)
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model
from repro.training import build_lenet, skewed_train, train_baseline


@pytest.fixture(scope="module")
def glyphs():
    return make_glyph_digits(n_train=1200, n_test=300, seed=11)


@pytest.fixture(scope="module")
def baseline_lenet(glyphs):
    model = build_lenet(seed=5)
    train_baseline(model, glyphs, TrainConfig(epochs=20))
    return model


@pytest.fixture(scope="module")
def skewed_lenet(glyphs, baseline_lenet):
    model = clone_model(baseline_lenet)
    skewed_train(
        model,
        glyphs,
        SkewedTrainingConfig(
            beta_scale=-1.0, lambda1=0.05, lambda2=1e-3, skew_epochs=15
        ),
        pretrained=True,
    )
    return model


class TestSoftwareTraining:
    def test_baseline_learns(self, baseline_lenet, glyphs):
        assert baseline_lenet.score(glyphs.x_test, glyphs.y_test) > 0.7

    def test_skewed_keeps_accuracy(self, baseline_lenet, skewed_lenet, glyphs):
        """Paper Table I: skewed accuracy within a couple of points of
        baseline (sometimes above it)."""
        base = baseline_lenet.score(glyphs.x_test, glyphs.y_test)
        skew = skewed_lenet.score(glyphs.x_test, glyphs.y_test)
        assert skew > base - 0.08

    def test_skewed_shifts_resistances_up(self, baseline_lenet, skewed_lenet):
        """Paper Section IV-A: the skewed distribution maps to larger
        resistances (smaller currents)."""

        def median_target_r(model):
            net = MappedNetwork(model, DeviceConfig(), seed=1)
            net.map_network(FreshMapper())
            targets = np.concatenate(
                [
                    np.asarray(
                        m.mapping.weight_to_resistance(m.software_matrix())
                    ).ravel()
                    for m in net.layers
                ]
            )
            return np.median(targets)

        assert median_target_r(skewed_lenet) > 1.3 * median_target_r(baseline_lenet)

    def test_skewed_quantizes_better(self, baseline_lenet, skewed_lenet, glyphs):
        """Paper Fig. 6: the skewed network loses less accuracy to
        mapping+quantization (averaged over hardware seeds)."""

        def premap_drop(model, seeds=(101, 102, 103)):
            sw = model.score(glyphs.x_test, glyphs.y_test)
            drops = []
            for seed in seeds:
                net = MappedNetwork(model, DeviceConfig(), seed=seed)
                net.map_network(FreshMapper())
                drops.append(sw - net.score(glyphs.x_test, glyphs.y_test))
            return np.mean(drops)

        assert premap_drop(skewed_lenet) < premap_drop(baseline_lenet) + 0.02


class TestHardwarePipeline:
    def test_map_tune_reaches_target(self, baseline_lenet, glyphs):
        net = MappedNetwork(
            baseline_lenet, DeviceConfig(pulses_to_collapse=1e4), seed=7
        )
        net.map_network()
        x, y = glyphs.x_train[:128], glyphs.y_train[:128]
        sw = baseline_lenet.score(x, y)
        tuner = OnlineTuner(
            TuningConfig(target_accuracy=0.9 * sw, max_iterations=100), seed=8
        )
        result = tuner.tune(net, x, y)
        assert result.converged

    def test_conv_layers_age_faster(self, baseline_lenet, glyphs):
        """Paper Fig. 11: conv layers are programmed more often and age
        faster than fully-connected layers."""
        from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
        from repro.analysis import layer_type_aging

        net = MappedNetwork(
            baseline_lenet, DeviceConfig(pulses_to_collapse=100), seed=9
        )
        net.map_network()
        x, y = glyphs.x_train[:96], glyphs.y_train[:96]
        sw = baseline_lenet.score(x, y)
        sim = LifetimeSimulator(
            net,
            x,
            y,
            config=LifetimeConfig(
                apps_per_window=100,
                max_windows=6,
                tuning=TuningConfig(target_accuracy=0.9 * sw, max_iterations=30),
            ),
            seed=10,
        )
        result = sim.run("t+t")
        grouped = layer_type_aging(result, net)
        r_max = net.device_config.r_max
        conv_drop = r_max - grouped["conv"][-1]
        dense_drop = r_max - grouped["dense"][-1]
        assert conv_drop > dense_drop


class TestLifetimeOrdering:
    @pytest.mark.slow
    def test_scenario_ordering(self, glyphs):
        """THE headline: lifetime(T+T) < lifetime(ST+T) <= lifetime(ST+AT).

        Miniature version of the Table I experiment; the full-scale
        version lives in benchmarks/test_table1_lifetime.py.
        """
        config = FrameworkConfig(
            device=DeviceConfig(pulses_to_collapse=30, write_noise=0.1),
            train=TrainConfig(epochs=20),
            skewed=SkewedTrainingConfig(
                pretrain=TrainConfig(epochs=20), skew_epochs=15
            ),
            lifetime=LifetimeConfig(
                apps_per_window=10_000,
                drift_magnitude=0.05,
                max_windows=120,
                tuning=TuningConfig(max_iterations=100, patience_evals=10),
            ),
            tune_samples=128,
            target_fraction=0.93,
        )
        framework = AgingAwareFramework(
            lambda seed: build_lenet(seed=seed), glyphs, config, seed=42
        )
        tt = framework.run_scenario("t+t")
        stt = framework.run_scenario("st+t")
        assert stt.lifetime_applications > tt.lifetime_applications
