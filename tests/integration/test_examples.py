"""Smoke tests: every example script must run end to end.

Examples are the first thing a new user executes; breaking one silently
is worse than a failing unit test.  Each example's ``main`` is invoked
in-process (fast paths where available) and must complete without
raising and print its headline output.
"""

import runpy
import sys

import pytest


@pytest.fixture()
def argv_guard():
    saved = sys.argv[:]
    yield
    sys.argv = saved


def run_example(path: str, capsys, extra_argv=()):
    sys.argv = [path, *extra_argv]
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys, argv_guard):
        out = run_example("examples/quickstart.py", capsys)
        assert "software accuracy" in out
        assert "after online tuning" in out

    def test_device_playground(self, capsys, argv_guard):
        out = run_example("examples/device_playground.py", capsys)
        assert "cell died after" in out
        assert "interface error" in out
        assert "aged window" in out

    def test_skewed_training_demo(self, capsys, argv_guard):
        out = run_example("examples/skewed_training_demo.py", capsys)
        assert "conventional training (T)" in out
        assert "skewed training (ST)" in out
        assert "median mapped resistance" in out

    @pytest.mark.slow
    def test_lifetime_comparison_fast(self, capsys, argv_guard):
        out = run_example("examples/lifetime_comparison.py", capsys, ("--fast",))
        assert "Table I (lifetime)" in out
        assert "T+T" in out and "ST+AT" in out
