"""Golden regression suite: pinned Table-I-style metrics.

Each test computes a metrics dict from a fixed-seed run and compares it
against a JSON snapshot in ``tests/integration/golden/``.  Integers and
booleans must match exactly (the seeds are fixed and every stream is
derivation-based); floats are compared with a per-suite tolerance that
absorbs BLAS/libm differences across platforms without hiding real
regressions.

When a change legitimately shifts the numbers (new default, calibration
fix), regenerate the snapshots with::

    PYTHONPATH=src python -m pytest tests/integration/test_golden.py --update-golden

then review the JSON diff before committing — every changed number is a
behaviour change you are signing off on (see CONTRIBUTING.md).
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    AgingAwareFramework,
    FrameworkConfig,
    LifetimeConfig,
    Sweep,
)
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.device.aging import AgingParams, ArrheniusAging
from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp
from repro.tuning import TuningConfig

GOLDEN_DIR = Path(__file__).parent / "golden"


def _compare_golden(request, name: str, actual: dict, rtol: float, atol: float):
    """Assert ``actual`` matches the named snapshot (or rewrite it)."""
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot {path.name} rewritten; review the diff")
    if not path.exists():
        pytest.fail(
            f"missing golden snapshot {path}; generate it with --update-golden"
        )
    expected = json.loads(path.read_text())
    mismatches: list[str] = []
    _diff("", expected, actual, rtol, atol, mismatches)
    assert not mismatches, (
        f"{len(mismatches)} mismatch(es) against {path.name}:\n"
        + "\n".join(mismatches[:20])
    )


def _diff(prefix, expected, actual, rtol, atol, out):
    """Recursive comparison: exact for ints/bools/strs, tolerant floats."""
    if isinstance(expected, dict):
        if not isinstance(actual, dict) or set(expected) != set(actual):
            out.append(f"{prefix or '<root>'}: keys {sorted(expected)} != "
                       f"{sorted(actual) if isinstance(actual, dict) else actual}")
            return
        for key in expected:
            _diff(f"{prefix}.{key}" if prefix else key,
                  expected[key], actual[key], rtol, atol, out)
    elif isinstance(expected, list):
        if not isinstance(actual, list) or len(expected) != len(actual):
            out.append(f"{prefix}: length {len(expected)} != "
                       f"{len(actual) if isinstance(actual, list) else actual}")
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(f"{prefix}[{i}]", e, a, rtol, atol, out)
    elif isinstance(expected, bool) or isinstance(actual, bool):
        if expected is not actual:
            out.append(f"{prefix}: {expected} != {actual}")
    elif isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if isinstance(expected, int) and isinstance(actual, int):
            if expected != actual:
                out.append(f"{prefix}: {expected} != {actual} (exact int)")
        elif not math.isclose(expected, actual, rel_tol=rtol, abs_tol=atol):
            out.append(f"{prefix}: {expected!r} != {actual!r} "
                       f"(rtol={rtol}, atol={atol})")
    elif expected != actual:
        out.append(f"{prefix}: {expected!r} != {actual!r}")


# -- snapshot 1: the Table-I scenario comparison ------------------------------
def _miniature_framework() -> AgingAwareFramework:
    """Fixed-seed miniature of the Table I experiment (seconds, 1 core)."""
    data = make_blobs(n_samples=200, n_classes=3, n_features=4, spread=0.4, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=100, write_noise=0.05),
        train=TrainConfig(epochs=8),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=8),
            skew_epochs=4,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=4,
            tuning=TuningConfig(max_iterations=25),
        ),
        tune_samples=64,
        target_fraction=0.9,
    )
    return AgingAwareFramework(
        lambda seed: build_mlp(4, 3, hidden=(12,), seed=seed), data, config, seed=7
    )


def _comparison_metrics(comparison) -> dict:
    metrics: dict = {"workload": comparison.workload}
    for key in sorted(comparison.results):
        r = comparison.results[key]
        last = r.windows[-1] if r.windows else None
        metrics[key] = {
            "lifetime_applications": r.lifetime_applications,
            "windows_survived": r.windows_survived,
            "n_windows": len(r.windows),
            "failed": r.failed,
            "software_accuracy": r.software_accuracy,
            "target_accuracy": r.target_accuracy,
            "final_accuracy": last.accuracy_after if last else 0.0,
            "final_dead_fraction": last.dead_fraction if last else 0.0,
            "tuning_iterations": r.iteration_trace(),
            "improvement_vs_tt": comparison.improvement(key),
        }
    return metrics


class TestGoldenComparison:
    def test_table1_miniature(self, request):
        comparison = _miniature_framework().compare()
        _compare_golden(
            request,
            "compare_blobs",
            _comparison_metrics(comparison),
            # Accuracies and ratios pass through training + float
            # reductions; allow small cross-platform drift.
            rtol=1e-6,
            atol=1e-9,
        )

    def test_table1_miniature_kernel_caches_disabled(self, request):
        """The kernel-layer caches (ISSUE 4) must be invisible: with
        state-version caching globally disabled, the run must still hit
        the exact same snapshot as the default cached path."""
        from repro.core import set_cache_enabled

        prior = set_cache_enabled(False)
        try:
            comparison = _miniature_framework().compare()
        finally:
            set_cache_enabled(prior)
        if request.config.getoption("--update-golden"):
            pytest.skip("snapshot owned by test_table1_miniature")
        _compare_golden(
            request,
            "compare_blobs",
            _comparison_metrics(comparison),
            rtol=1e-6,
            atol=1e-9,
        )

    def test_table1_miniature_scalar_tuner(self, request):
        """The vectorized lifetime hot loop (ISSUE 6) must be invisible
        too: the scalar reference path selected by REPRO_SCALAR_TUNER
        hits the exact same snapshot as the default vectorized path."""
        from repro.core import set_vectorized_enabled

        prior = set_vectorized_enabled(False)
        try:
            comparison = _miniature_framework().compare()
        finally:
            set_vectorized_enabled(prior)
        if request.config.getoption("--update-golden"):
            pytest.skip("snapshot owned by test_table1_miniature")
        _compare_golden(
            request,
            "compare_blobs",
            _comparison_metrics(comparison),
            rtol=1e-6,
            atol=1e-9,
        )


# -- cross-path kill-and-resume (ISSUE 6) -------------------------------------
class TestCrossPathResume:
    """A checkpoint is path-agnostic: a snapshot written mid-run under
    the scalar reference path must resume **bit-identically** under the
    vectorized path (and match the uninterrupted vectorized run) — the
    on-disk state contains everything, and the two paths walk the same
    trajectory from any window boundary."""

    def _make_sim(self, trained_mlp, device_config, blob_dataset):
        from repro.core.lifetime import LifetimeSimulator
        from repro.mapping import MappedNetwork

        network = MappedNetwork(trained_mlp, device_config, seed=41)
        network.map_network()
        config = LifetimeConfig(
            apps_per_window=1000,
            drift_magnitude=0.05,
            max_windows=4,
            tuning=TuningConfig(target_accuracy=0.9, max_iterations=20),
        )
        return LifetimeSimulator(
            network,
            blob_dataset.x_train[:96],
            blob_dataset.y_train[:96],
            config=config,
            seed=42,
        )

    def test_scalar_checkpoint_resumes_under_vectorized_path(
        self, tmp_path, trained_mlp, device_config, blob_dataset
    ):
        from repro.core import set_vectorized_enabled
        from repro.core.checkpoint import CheckpointManager
        from repro.core.lifetime import LifetimeSimulator

        # Reference: uninterrupted run on the default vectorized path.
        plain = self._make_sim(trained_mlp, device_config, blob_dataset).run("t+t")

        # Kill-side: a scalar-path run that checkpoints every window.
        prior = set_vectorized_enabled(False)
        try:
            checkpointed = self._make_sim(
                trained_mlp, device_config, blob_dataset
            ).run("t+t", checkpoint_every=1, checkpoint_dir=tmp_path, run_id="x")
        finally:
            set_vectorized_enabled(prior)
        assert checkpointed.to_dict() == plain.to_dict()

        # Resume each scalar-written snapshot under the vectorized path.
        for entry in CheckpointManager(tmp_path).entries():
            resumed = LifetimeSimulator.resume(entry.path).run()
            assert resumed.to_dict() == plain.to_dict(), (
                f"cross-path resume at window {entry.window} diverged"
            )


# -- snapshot 2: the aged-window curves (pure math, Fig. 4 shape) -------------
class TestGoldenAgingCurves:
    def test_aged_window_trajectory(self, request):
        params = AgingParams.calibrated(
            r_fresh_min=1e4, r_fresh_max=1e5, pulses_to_collapse=1e5
        )
        aging = ArrheniusAging(params)
        stress = np.linspace(0.0, 0.12, 7)  # up to past full collapse
        rows = []
        for temperature in (280.0, 300.0, 330.0):
            lo, hi = aging.aged_bounds(1e4, 1e5, temperature, stress)
            rows.append(
                {
                    "temperature": temperature,
                    "aged_min": list(np.asarray(lo)),
                    "aged_max": list(np.asarray(hi)),
                    "t_collapse": aging.stress_time_to_collapse(
                        1e4, 1e5, temperature
                    ),
                }
            )
        # Pure closed-form math: essentially bit-stable everywhere.
        _compare_golden(
            request,
            "aging_curves",
            {"stress_time": list(stress), "curves": rows},
            rtol=1e-12,
            atol=1e-15,
        )


# -- snapshot 3: a sweep through the executor ---------------------------------
class TestGoldenSweep:
    def test_collapse_time_sweep(self, request):
        def collapse_metrics(exponent, rng):
            params = AgingParams.calibrated(
                r_fresh_min=1e4,
                r_fresh_max=1e5,
                pulses_to_collapse=1e5,
                time_exponent=exponent,
            )
            aging = ArrheniusAging(params)
            return {
                "t_collapse_300K": aging.stress_time_to_collapse(1e4, 1e5, 300.0),
                "deg_max_mid": aging.degradation_max(300.0, 0.05),
            }

        sweep = Sweep("time_exponent", collapse_metrics, seed=13)
        result = sweep.run([0.8, 1.0, 1.2])
        actual = {
            "parameter": result.parameter,
            "points": [
                {"value": p.value, "metrics": p.metrics} for p in result.points
            ],
        }
        _compare_golden(request, "sweep_collapse", actual, rtol=1e-12, atol=1e-15)
