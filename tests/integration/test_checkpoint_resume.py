"""Kill-and-resume integration tests (DESIGN.md §10).

The contract under test is the strongest one the subsystem makes: a
lifetime run that is killed at ANY window boundary and resumed from its
latest snapshot produces the **bit-identical** :class:`LifetimeResult`
— same accuracy floats, same pulse counts, same RNG stream positions —
as a run that was never interrupted.  Likewise a re-launched campaign
over a journal re-executes zero completed points.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    CheckpointManager,
    RunJournal,
    load_checkpoint,
    rng_state,
)
from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
from repro.mapping import MappedNetwork
from repro.tuning import TuningConfig

MAX_WINDOWS = 5


def make_sim(trained_mlp, device_config, blob_dataset) -> LifetimeSimulator:
    """A fresh, deterministic mid-size simulator (same seed every call)."""
    network = MappedNetwork(trained_mlp, device_config, seed=41)
    network.map_network()
    config = LifetimeConfig(
        apps_per_window=1000,
        drift_magnitude=0.05,
        max_windows=MAX_WINDOWS,
        tuning=TuningConfig(target_accuracy=0.9, max_iterations=20),
    )
    return LifetimeSimulator(
        network,
        blob_dataset.x_train[:96],
        blob_dataset.y_train[:96],
        config=config,
        seed=42,
    )


@pytest.fixture(scope="module")
def device_config_module():
    from repro.device import DeviceConfig

    return DeviceConfig(pulses_to_collapse=100, write_noise=0.0, read_noise=0.0)


@pytest.fixture(scope="module")
def run_pair(tmp_path_factory, trained_mlp, device_config_module, blob_dataset):
    """(plain run, checkpointing run + its sim, checkpoint dir)."""
    ckpt_dir = tmp_path_factory.mktemp("ckpts")
    plain = make_sim(trained_mlp, device_config_module, blob_dataset).run("t+t")
    sim = make_sim(trained_mlp, device_config_module, blob_dataset)
    checkpointed = sim.run(
        "t+t", checkpoint_every=1, checkpoint_dir=ckpt_dir, run_id="t"
    )
    return plain, checkpointed, sim, ckpt_dir


class TestKillAndResume:
    def test_checkpointing_is_pure(self, run_pair):
        """Writing snapshots must not perturb the run (no RNG draws)."""
        plain, checkpointed, _sim, _dir = run_pair
        assert checkpointed.to_dict() == plain.to_dict()

    def test_snapshot_per_window(self, run_pair):
        *_, ckpt_dir = run_pair
        entries = CheckpointManager(ckpt_dir).entries()
        assert [e.window for e in entries] == list(range(1, MAX_WINDOWS + 1))

    def test_resume_from_every_window_is_bit_identical(self, run_pair):
        plain, _checkpointed, _sim, ckpt_dir = run_pair
        for entry in CheckpointManager(ckpt_dir).entries():
            resumed = LifetimeSimulator.resume(entry.path).run()
            assert resumed.to_dict() == plain.to_dict(), (
                f"resume at window {entry.window} diverged"
            )

    def test_resumed_run_continues_checkpoint_series(
        self, run_pair, tmp_path, trained_mlp, device_config_module, blob_dataset
    ):
        """A resumed run's later snapshots carry the exact same device
        and RNG state as the uninterrupted run's — resumability composes
        (kill it twice and it still converges to the same trajectory)."""
        plain, _checkpointed, _sim, ckpt_dir = run_pair
        manager = CheckpointManager(ckpt_dir)
        resume_at = 2
        resumed = LifetimeSimulator.resume(
            manager.path_for("t", resume_at)
        ).run(checkpoint_every=1, checkpoint_dir=tmp_path, run_id="t")
        assert resumed.to_dict() == plain.to_dict()
        for window in range(resume_at + 1, MAX_WINDOWS + 1):
            original = load_checkpoint(manager.path_for("t", window))
            again = load_checkpoint(CheckpointManager(tmp_path).path_for("t", window))
            assert again["layers"] == original["layers"]
            assert again["rng"] == original["rng"]
            assert again["result"] == original["result"]

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(window=st.integers(min_value=1, max_value=MAX_WINDOWS))
    def test_resume_at_any_epoch_preserves_rng_stream(self, run_pair, window):
        """Property: for every checkpoint epoch, the resumed run ends
        with the tuner generator in the exact bit-state of the
        uninterrupted run — the stream has no seam."""
        plain, _checkpointed, sim, ckpt_dir = run_pair
        restored = LifetimeSimulator.resume(
            CheckpointManager(ckpt_dir).path_for("t", window)
        )
        result = restored.run()
        assert result.to_dict() == plain.to_dict()
        assert rng_state(restored.tuner._rng) == rng_state(sim.tuner._rng)
        for mapped_a, mapped_b in zip(restored.network.layers, sim.network.layers):
            for (_, _, ta), (_, _, tb) in zip(
                mapped_a.tiles.iter_tiles(), mapped_b.tiles.iter_tiles()
            ):
                assert np.array_equal(ta.resistance, tb.resistance)
                assert ta.state_version == tb.state_version


class TestCampaignJournalRelaunch:
    GRID = dict(kinds=("stuck_at",), rates=(0.02,), window=1, with_degradation=False)

    def test_relaunch_executes_zero_points(self, tmp_path, monkeypatch):
        from tests.robustness.conftest import make_mini_framework

        from repro.core.framework import AgingAwareFramework
        from repro.robustness import FaultCampaign, build_grid

        points = build_grid(**self.GRID)
        journal_path = tmp_path / "campaign.jsonl"
        first = FaultCampaign(
            make_mini_framework(), scenario="st+at", journal=RunJournal(journal_path)
        ).run(points)

        # The relaunch must satisfy every point from the journal: poison
        # the simulation entry point so any re-execution blows up.
        def boom(self, *a, **k):  # pragma: no cover - must never run
            raise AssertionError("journaled point was re-executed")

        monkeypatch.setattr(AgingAwareFramework, "run_scenario", boom)
        relaunch_journal = RunJournal(journal_path)
        second = FaultCampaign(
            make_mini_framework(), scenario="st+at", journal=relaunch_journal
        ).run(points)
        assert relaunch_journal.skipped == len(points)
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records
        ]

    def test_corrupt_tail_reexecutes_only_lost_point(self, tmp_path):
        from tests.robustness.conftest import make_mini_framework

        from repro.robustness import FaultCampaign, build_grid

        points = build_grid(**self.GRID)
        journal_path = tmp_path / "campaign.jsonl"
        first = FaultCampaign(
            make_mini_framework(), scenario="st+at", journal=RunJournal(journal_path)
        ).run(points)

        # Crash mid-append: the last journal line is torn.
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[:-7])
        relaunch_journal = RunJournal(journal_path)
        assert relaunch_journal.dropped_lines == 1
        second = FaultCampaign(
            make_mini_framework(), scenario="st+at", journal=relaunch_journal
        ).run(points)
        assert relaunch_journal.skipped == len(points) - 1
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records
        ]
        # The re-executed point was re-journaled: a third launch is all hits.
        assert len(RunJournal(journal_path)) == len(points)

    def test_parallel_relaunch_replays_journal(self, tmp_path):
        from tests.robustness.conftest import make_mini_framework

        from repro.robustness import FaultCampaign, build_grid

        points = build_grid(**self.GRID)
        journal_path = tmp_path / "campaign.jsonl"
        first = FaultCampaign(
            make_mini_framework(),
            scenario="st+at",
            workers=2,
            journal=RunJournal(journal_path),
        ).run(points)
        relaunch_journal = RunJournal(journal_path)
        second = FaultCampaign(
            make_mini_framework(),
            scenario="st+at",
            workers=2,
            journal=relaunch_journal,
        ).run(points)
        assert relaunch_journal.skipped == len(points)
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records
        ]


class TestSweepJournal:
    def test_sweep_relaunch_skips_journaled_points(self, tmp_path):
        from repro.core.sweep import Sweep

        calls = []

        def fn(value, rng):
            calls.append(value)
            return {"metric": value * 2.0 + float(rng.standard_normal())}

        journal_path = tmp_path / "sweep.jsonl"
        sweep = Sweep("alpha", fn, seed=5)
        first = sweep.run(
            [1, 2, 3], journal=RunJournal(journal_path), cache_token="v1"
        )
        assert calls == [1, 2, 3]
        second = sweep.run(
            [1, 2, 3, 4], journal=RunJournal(journal_path), cache_token="v1"
        )
        assert calls == [1, 2, 3, 4]  # only the new point executed
        assert [p.cached for p in second.points] == [True, True, True, False]
        assert [p.metrics for p in second.points[:3]] == [
            p.metrics for p in first.points
        ]
        # A different cache token means different physics: nothing replays.
        third = sweep.run([1], journal=RunJournal(journal_path), cache_token="v2")
        assert calls == [1, 2, 3, 4, 1]
        assert not third.points[0].cached


class TestResumeCli:
    def test_run_resume_and_checkpoint_tools(
        self, tmp_path, capsys, trained_mlp, device_config_module, blob_dataset
    ):
        from repro.cli import main
        from repro.io import save_result

        ckpt_dir = tmp_path / "ckpts"
        sim = make_sim(trained_mlp, device_config_module, blob_dataset)
        plain = sim.run("t+t")
        sim2 = make_sim(trained_mlp, device_config_module, blob_dataset)
        sim2.run("t+t", checkpoint_every=2, checkpoint_dir=ckpt_dir, run_id="t+t-r0")

        snapshot = ckpt_dir / "t+t-r0-w00002.ckpt.json"
        out = tmp_path / "resumed.json"
        assert main(["run", "--resume", str(snapshot), "--out", str(out)]) == 0
        expected = tmp_path / "expected.json"
        save_result(plain, expected)
        assert json.loads(out.read_text()) == json.loads(expected.read_text())

        assert main(["checkpoints", "ls", "--dir", str(ckpt_dir)]) == 0
        ls_out = capsys.readouterr().out
        assert "t+t-r0" in ls_out and "latest" in ls_out

        assert main(["checkpoints", "inspect", str(snapshot)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["scenario_key"] == "t+t" and info["next_window"] == 2

        assert main(["checkpoints", "gc", "--dir", str(ckpt_dir), "--keep", "1"]) == 0
        remaining = sorted(p.name for p in ckpt_dir.glob("*.ckpt.json"))
        assert remaining == ["t+t-r0-w00004.ckpt.json"]
