"""Unit tests for the procedural glyph-digit dataset."""

import numpy as np
import pytest

from repro.data.glyphs import GLYPH_CLASS_NAMES, make_glyph_digits, render_glyph
from repro.exceptions import ConfigurationError


class TestRenderGlyph:
    def test_shape_and_range(self, rng):
        img = render_glyph(5, rng)
        assert img.shape == (1, 12, 12)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_rejects_bad_digit(self):
        with pytest.raises(ConfigurationError):
            render_glyph(10)

    def test_noise_free_glyph_has_stroke(self):
        img = render_glyph(8, np.random.default_rng(1), noise=0.0, dropout=0.0, blur_prob=0.0)
        assert (img > 0.5).sum() >= 10  # the 8 glyph has many lit pixels

    def test_different_digits_differ(self):
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        a = render_glyph(0, rng_a, noise=0.0, dropout=0.0, blur_prob=0.0)
        b = render_glyph(1, rng_b, noise=0.0, dropout=0.0, blur_prob=0.0)
        assert not np.array_equal(a, b)

    def test_augmentation_varies_samples(self):
        rng = np.random.default_rng(3)
        a = render_glyph(4, rng)
        b = render_glyph(4, rng)
        assert not np.array_equal(a, b)


class TestMakeGlyphDigits:
    def test_shapes(self):
        ds = make_glyph_digits(n_train=100, n_test=30, seed=1)
        assert ds.x_train.shape == (100, 1, 12, 12)
        assert ds.y_train.shape == (100, 10)
        assert ds.n_test == 30
        assert ds.class_names == GLYPH_CLASS_NAMES

    def test_rejects_tiny_splits(self):
        with pytest.raises(ConfigurationError):
            make_glyph_digits(n_train=5, n_test=30)

    def test_all_classes_present(self):
        ds = make_glyph_digits(n_train=200, n_test=50, seed=2)
        labels = np.concatenate([ds.y_train, ds.y_test]).argmax(axis=1)
        assert set(labels) == set(range(10))

    def test_roughly_balanced(self):
        ds = make_glyph_digits(n_train=500, n_test=100, seed=3)
        counts = np.bincount(
            np.concatenate([ds.y_train, ds.y_test]).argmax(axis=1), minlength=10
        )
        assert counts.min() == counts.max() == 60

    def test_deterministic(self):
        a = make_glyph_digits(n_train=50, n_test=20, seed=9)
        b = make_glyph_digits(n_train=50, n_test=20, seed=9)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_learnable(self, glyph_dataset):
        """A linear classifier on raw pixels beats chance comfortably —
        the labels carry signal."""
        from repro.training import build_mlp

        x = glyph_dataset.x_train.reshape(glyph_dataset.n_train, -1)
        xt = glyph_dataset.x_test.reshape(glyph_dataset.n_test, -1)
        model = build_mlp(x.shape[1], 10, hidden=(64,), seed=1)
        model.fit(x, glyph_dataset.y_train, epochs=30, batch_size=32)
        # Random placement makes raw pixels hard for a flat MLP with only
        # 300 samples; well above the 0.1 chance level is the bar here
        # (the CNN integration tests hold the high-accuracy bar).
        assert model.score(xt, glyph_dataset.y_test) > 0.3
