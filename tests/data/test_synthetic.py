"""Unit tests for the toy vector datasets."""

import numpy as np
import pytest

from repro.data.synthetic import make_blobs, make_rings, make_spirals, make_xor
from repro.exceptions import ConfigurationError


class TestBlobs:
    def test_shapes(self):
        ds = make_blobs(n_samples=100, n_classes=3, n_features=5, seed=1)
        assert ds.sample_shape == (5,)
        assert ds.n_classes == 3
        assert ds.n_train + ds.n_test == 100

    def test_separable_when_tight(self):
        """With tiny spread, nearest-centroid should be near-perfect —
        sanity that labels actually correspond to clusters."""
        ds = make_blobs(n_samples=200, n_classes=3, spread=0.05, seed=2)
        x, y = ds.x_train, ds.y_train.argmax(axis=1)
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(3)])
        pred = np.argmin(
            np.linalg.norm(x[:, None, :] - centroids[None], axis=2), axis=1
        )
        assert np.mean(pred == y) > 0.95

    def test_rejects_single_class(self):
        with pytest.raises(ConfigurationError):
            make_blobs(n_classes=1)

    def test_deterministic(self):
        a = make_blobs(seed=7)
        b = make_blobs(seed=7)
        np.testing.assert_array_equal(a.x_train, b.x_train)


class TestSpirals:
    def test_shapes_and_balance(self):
        ds = make_spirals(n_samples=120, n_classes=3, seed=3)
        counts = ds.y_train.sum(axis=0) + ds.y_test.sum(axis=0)
        assert counts.sum() == 120
        assert counts.min() >= 30  # roughly balanced

    def test_points_bounded(self):
        ds = make_spirals(n_samples=100, noise=0.0, seed=4)
        radii = np.linalg.norm(np.concatenate([ds.x_train, ds.x_test]), axis=1)
        assert radii.max() <= 1.05


class TestXor:
    def test_labels_match_quadrants_when_noise_free(self):
        ds = make_xor(n_samples=200, noise=0.0, seed=5)
        x = np.concatenate([ds.x_train, ds.x_test])
        y = np.concatenate([ds.y_train, ds.y_test]).argmax(axis=1)
        expected = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        assert np.mean(expected == y) == 1.0


class TestRings:
    def test_radius_bands(self):
        ds = make_rings(n_samples=300, n_classes=3, noise=0.0, seed=6)
        x = np.concatenate([ds.x_train, ds.x_test])
        y = np.concatenate([ds.y_train, ds.y_test]).argmax(axis=1)
        radii = np.linalg.norm(x, axis=1)
        for c in range(3):
            np.testing.assert_allclose(radii[y == c], c + 1.0, atol=1e-9)
