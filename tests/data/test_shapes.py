"""Unit tests for the textured-shapes dataset."""

import numpy as np
import pytest

from repro.data.shapes import (
    SHAPE_CLASS_NAMES,
    SHAPES,
    TEXTURES,
    _shape_mask,
    _texture,
    make_textured_shapes,
    render_shape,
)
from repro.exceptions import ConfigurationError


class TestShapeMasks:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_mask_nonempty_and_bounded(self, shape):
        mask = _shape_mask(shape, 8.0, 8.0, 4.0)
        assert mask.shape == (16, 16)
        assert 4 < mask.sum() < 200

    def test_circle_is_symmetric(self):
        mask = _shape_mask("circle", 8.0, 8.0, 4.0)
        np.testing.assert_array_equal(mask, mask.T)

    def test_ring_has_hole(self):
        ring = _shape_mask("ring", 8.0, 8.0, 5.0)
        assert not ring[8, 8]

    def test_unknown_shape(self):
        with pytest.raises(ConfigurationError):
            _shape_mask("pentagon", 8, 8, 4)


class TestTextures:
    @pytest.mark.parametrize("texture", TEXTURES)
    def test_values_binary(self, texture):
        field = _texture(texture, phase=0)
        assert set(np.unique(field)) <= {0.35, 1.0}

    def test_solid_is_uniform(self):
        assert np.all(_texture("solid", 0) == 1.0)

    def test_stripes_vary(self):
        assert len(np.unique(_texture("hstripe", 0))) == 2

    def test_unknown_texture(self):
        with pytest.raises(ConfigurationError):
            _texture("polka", 0)


class TestRenderShape:
    def test_shape_and_range(self, rng):
        img = render_shape(0, rng)
        assert img.shape == (1, 16, 16)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_rejects_bad_class(self):
        with pytest.raises(ConfigurationError):
            render_shape(20)

    def test_class_names_cover_grid(self):
        assert len(SHAPE_CLASS_NAMES) == len(SHAPES) * len(TEXTURES)
        assert SHAPE_CLASS_NAMES[0] == "circle/hstripe"


class TestMakeTexturedShapes:
    def test_shapes(self):
        ds = make_textured_shapes(n_train=100, n_test=40, seed=1)
        assert ds.x_train.shape == (100, 1, 16, 16)
        assert ds.n_classes == 20

    def test_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            make_textured_shapes(n_train=10, n_test=40)

    def test_all_classes_present(self):
        ds = make_textured_shapes(n_train=300, n_test=100, seed=2)
        labels = np.concatenate([ds.y_train, ds.y_test]).argmax(axis=1)
        assert set(labels) == set(range(20))

    def test_deterministic(self):
        a = make_textured_shapes(n_train=60, n_test=20, seed=5)
        b = make_textured_shapes(n_train=60, n_test=20, seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)
