"""Unit tests for the Dataset container and helpers."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, one_hot, train_test_split
from repro.exceptions import ConfigurationError, ShapeError


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ConfigurationError):
            one_hot(np.array([-1]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 3).shape == (0, 3)


class TestSplit:
    def test_sizes(self, rng):
        x = rng.normal(size=(100, 3))
        y = one_hot(rng.integers(0, 2, 100), 2)
        xtr, ytr, xte, yte = train_test_split(x, y, 0.2, seed=1)
        assert len(xte) == 20 and len(xtr) == 80
        assert len(ytr) == 80 and len(yte) == 20

    def test_partition_is_complete(self, rng):
        x = np.arange(50, dtype=float).reshape(50, 1)
        y = one_hot(np.zeros(50, dtype=int), 2)
        xtr, _ytr, xte, _yte = train_test_split(x, y, 0.3, seed=2)
        combined = np.sort(np.concatenate([xtr, xte]).ravel())
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_deterministic(self, rng):
        x = rng.normal(size=(30, 2))
        y = one_hot(rng.integers(0, 2, 30), 2)
        a = train_test_split(x, y, 0.25, seed=5)
        b = train_test_split(x, y, 0.25, seed=5)
        for arr_a, arr_b in zip(a, b):
            np.testing.assert_array_equal(arr_a, arr_b)

    def test_validation(self, rng):
        x = rng.normal(size=(10, 2))
        y = one_hot(np.zeros(10, dtype=int), 2)
        with pytest.raises(ConfigurationError):
            train_test_split(x, y, 0.0)
        with pytest.raises(ShapeError):
            train_test_split(x, y[:-1], 0.2)


class TestDataset:
    @pytest.fixture()
    def ds(self, rng):
        x = rng.normal(size=(40, 2))
        y = one_hot(rng.integers(0, 4, 40), 4)
        return Dataset(x[:30], y[:30], x[30:], y[30:], name="toy")

    def test_properties(self, ds):
        assert ds.n_classes == 4
        assert ds.sample_shape == (2,)
        assert ds.n_train == 30 and ds.n_test == 10

    def test_length_mismatch_raises(self, rng):
        x = rng.normal(size=(5, 2))
        y = one_hot(np.zeros(4, dtype=int), 2)
        with pytest.raises(ShapeError):
            Dataset(x, y, x, y)

    def test_batches_cover_all(self, ds):
        seen = 0
        for bx, by in ds.batches(8, seed=3):
            assert len(bx) == len(by)
            seen += len(bx)
        assert seen == ds.n_train

    def test_batches_validate_size(self, ds):
        with pytest.raises(ConfigurationError):
            list(ds.batches(0))

    def test_subset(self, ds):
        sub = ds.subset(10, 5)
        assert sub.n_train == 10 and sub.n_test == 5

    def test_normalized_statistics(self, ds):
        norm = ds.normalized()
        assert abs(norm.x_train.mean()) < 1e-12
        assert abs(norm.x_train.std() - 1.0) < 1e-12

    def test_describe_mentions_name(self, ds):
        assert "toy" in ds.describe()
