"""Unit tests for pulse-shaping mitigation (paper ref [9])."""

import pytest

from repro.device import DeviceConfig, Memristor
from repro.exceptions import ConfigurationError
from repro.mitigation import PULSE_SHAPES, PulseShaping
from repro.mitigation.pulse_shaping import PulseShape


class TestPulseShape:
    def test_registry_contains_paper_waveforms(self):
        assert {"dc", "triangular", "sinusoidal"} <= set(PULSE_SHAPES)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PulseShape("x", stress_scale=0.0, pulses_per_op=1)
        with pytest.raises(ConfigurationError):
            PulseShape("x", stress_scale=0.5, pulses_per_op=0)

    def test_net_benefit(self):
        tri = PULSE_SHAPES["triangular"]
        assert tri.net_benefit == pytest.approx(1.0 / (0.25 * 2))
        assert PULSE_SHAPES["dc"].net_benefit == 1.0

    def test_shaped_waveforms_are_net_wins(self):
        for name, shape in PULSE_SHAPES.items():
            if name != "dc":
                assert shape.net_benefit > 1.0


class TestPulseShaping:
    def test_unknown_shape(self):
        with pytest.raises(ConfigurationError):
            PulseShaping("square-ish")

    def test_dc_apply_preserves_stress_rate(self):
        cfg = DeviceConfig(pulses_to_collapse=500)
        shaped = PulseShaping("dc").apply(cfg)
        assert shaped.pulse_width == cfg.pulse_width

    def test_shaped_config_ages_slower(self):
        """The headline of ref [9]: same programming traffic, longer
        life under triangular pulses."""
        cfg = DeviceConfig(pulses_to_collapse=300, write_noise=0.0)
        dc_cell = Memristor(cfg, seed=1)
        tri_cell = Memristor(PulseShaping("triangular").apply(cfg), seed=1)
        for _ in range(100):
            dc_cell.program(cfg.r_min, pulses=1)
            tri_cell.program(cfg.r_min, pulses=1)
        assert tri_cell.stress_time < dc_cell.stress_time
        _lo_dc, hi_dc = dc_cell.aged_bounds()
        _lo_tri, hi_tri = tri_cell.aged_bounds()
        assert hi_tri > hi_dc

    def test_calibration_frozen_at_dc(self):
        """Rescaling the pulse width must not silently re-calibrate the
        endurance target (that would cancel the benefit)."""
        cfg = DeviceConfig(pulses_to_collapse=300)
        shaped = PulseShaping("triangular").apply(cfg)
        assert shaped.aging_params is not None
        dc_params = cfg.make_aging_model().params
        assert shaped.aging_params.prefactor_max == dc_params.prefactor_max
