"""Unit tests for the series-resistor mitigation (paper ref [11])."""

import pytest

from repro.device import DeviceConfig
from repro.exceptions import ConfigurationError
from repro.mitigation import SeriesResistor


class TestSeriesResistor:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SeriesResistor(-1.0)

    def test_zero_is_identity(self):
        cfg = DeviceConfig()
        out = SeriesResistor(0.0).apply(cfg)
        assert out.r_min == cfg.r_min
        assert out.r_max == cfg.r_max
        assert out.write_noise == cfg.write_noise

    def test_window_shifts_up(self):
        cfg = DeviceConfig()
        out = SeriesResistor(5e3).apply(cfg)
        assert out.r_min == cfg.r_min + 5e3
        assert out.r_max == cfg.r_max + 5e3

    def test_write_noise_suppressed(self):
        cfg = DeviceConfig(write_noise=0.1)
        out = SeriesResistor(1e4).apply(cfg)
        assert out.write_noise == pytest.approx(0.05)

    def test_conductance_compression_below_one(self):
        cfg = DeviceConfig()
        sr = SeriesResistor(1e4)
        compression = sr.conductance_compression(cfg)
        assert 0.0 < compression < 1.0

    def test_more_resistance_more_compression(self):
        cfg = DeviceConfig()
        assert SeriesResistor(2e4).conductance_compression(cfg) < SeriesResistor(
            5e3
        ).conductance_compression(cfg)

    def test_protected_cell_ages_slower(self):
        """Current limiting: a protected cell accumulates less stress
        for the same worst-case programming traffic."""
        from repro.device import Memristor

        cfg = DeviceConfig(pulses_to_collapse=300, write_noise=0.0)
        bare = Memristor(cfg, seed=1)
        prot_cfg = SeriesResistor(1e4).apply(cfg)
        protected = Memristor(prot_cfg, seed=1)
        for _ in range(50):
            bare.program(cfg.r_min)
            protected.program(prot_cfg.r_min)
        assert protected.stress_time < bare.stress_time

    def test_calibration_frozen_at_bare_device(self):
        cfg = DeviceConfig(pulses_to_collapse=300)
        prot = SeriesResistor(1e4).apply(cfg)
        assert prot.aging_params is not None
        assert prot.aging_params.prefactor_max == cfg.make_aging_model().params.prefactor_max
