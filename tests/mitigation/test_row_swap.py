"""Unit tests for row-swapping wear levelling (paper ref [12])."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mitigation import RowSwapper


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            RowSwapper(max_swaps_per_cycle=0)
        with pytest.raises(ConfigurationError):
            RowSwapper(threshold=1.5)


class TestPermutations:
    def test_identity_initially(self, mapped_mlp):
        swapper = RowSwapper()
        layer = mapped_mlp.layers[0]
        np.testing.assert_array_equal(
            swapper.permutation_for(layer), np.arange(layer.matrix_shape[0])
        )

    def test_no_swaps_on_uniform_stress(self, mapped_mlp):
        swapper = RowSwapper()
        layer = mapped_mlp.layers[0]
        assert swapper.maintain(layer) == 0

    def test_hot_rows_swapped_with_cold(self, mapped_mlp):
        swapper = RowSwapper(max_swaps_per_cycle=2, threshold=0.1)
        layer = mapped_mlp.layers[0]
        # Pulse only row 0 heavily: it becomes the hottest row.
        directions = np.zeros(layer.matrix_shape, dtype=int)
        directions[0, :] = 1
        for _ in range(10):
            layer.tiles.step_conductance(directions)
        swaps = swapper.maintain(layer)
        assert swaps >= 1
        perm = swapper.permutation_for(layer)
        assert perm[0] != 0  # logical row 0 moved off the hot physical row

    def test_computation_preserved_under_permutation(self, mapped_mlp, blob_dataset):
        """Swapping rows then remapping must not change the computed
        function (beyond reprogramming noise)."""
        x, y = blob_dataset.x_test, blob_dataset.y_test
        acc_before = mapped_mlp.score(x, y)
        swapper = RowSwapper(max_swaps_per_cycle=4, threshold=0.0)
        layer = mapped_mlp.layers[0]
        directions = np.zeros(layer.matrix_shape, dtype=int)
        directions[0, :] = 1
        for _ in range(5):
            layer.tiles.step_conductance(directions)
        swapper.apply_to_network(mapped_mlp)
        mapped_mlp.map_network()  # reprogram under the new permutation
        acc_after = mapped_mlp.score(x, y)
        assert acc_after >= acc_before - 0.05

    def test_round_trip_matrices(self, mapped_mlp, rng):
        swapper = RowSwapper()
        layer = mapped_mlp.layers[0]
        perm = rng.permutation(layer.matrix_shape[0])
        swapper.permutations[layer.layer_index] = perm
        logical = rng.normal(size=layer.matrix_shape)
        physical = swapper.permuted_targets(layer, logical)
        np.testing.assert_array_equal(swapper.unpermute_matrix(layer, physical), logical)

    def test_apply_to_network_installs_permutations(self, mapped_mlp):
        swapper = RowSwapper(threshold=0.0)
        layer = mapped_mlp.layers[0]
        directions = np.zeros(layer.matrix_shape, dtype=int)
        directions[0, :] = 1
        for _ in range(5):
            layer.tiles.step_conductance(directions)
        swapper.apply_to_network(mapped_mlp)
        assert mapped_mlp.layers[0].row_permutation is not None


class TestMappedLayerPermutation:
    def test_rejects_non_permutation(self, mapped_mlp):
        with pytest.raises(ConfigurationError):
            mapped_mlp.layers[0].set_row_permutation(np.zeros(4, dtype=int))

    def test_physical_logical_roundtrip(self, mapped_mlp, rng):
        layer = mapped_mlp.layers[0]
        layer.set_row_permutation(rng.permutation(layer.matrix_shape[0]))
        logical = rng.normal(size=layer.matrix_shape)
        np.testing.assert_array_equal(
            layer._to_logical(layer._to_physical(logical)), logical
        )
        layer.set_row_permutation(None)

    def test_hardware_matrix_respects_permutation(self, mapped_mlp, blob_dataset):
        """Program under a permutation; the reconstructed logical
        weights must match the unpermuted ones."""
        layer = mapped_mlp.layers[0]
        before = layer.hardware_matrix()
        perm = np.roll(np.arange(layer.matrix_shape[0]), 1)
        layer.set_row_permutation(perm)
        layer.program()
        after = layer.hardware_matrix()
        # Same logical weights (up to one reprogram's quantization).
        assert np.max(np.abs(after - before)) < 0.3
        layer.set_row_permutation(None)
