"""Hypothesis property tests across the mapping pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.levels import LevelGrid
from repro.mapping.linear import LinearWeightMapping
from repro.mapping.quantize import quantize_weights

WEIGHTS = st.lists(st.floats(-1.0, 1.0), min_size=2, max_size=40)


class TestQuantizePipeline:
    @given(w=WEIGHTS, n_levels=st.integers(4, 64))
    @settings(max_examples=60, deadline=None)
    def test_quantization_is_idempotent(self, w, n_levels):
        """Quantizing an already-quantized matrix is a no-op — the
        program-and-verify controller relies on this to skip pulses."""
        grid = LevelGrid(1e4, 1e5, n_levels)
        mapping = LinearWeightMapping(-1.0, 1.0, 1e-5, 1e-4)
        arr = np.asarray(w)
        once = quantize_weights(arr, mapping, grid)
        twice = quantize_weights(once, mapping, grid)
        np.testing.assert_allclose(twice, once, atol=1e-9)

    @given(w=WEIGHTS)
    @settings(max_examples=40, deadline=None)
    def test_quantization_preserves_ordering(self, w):
        """Monotone map + monotone rounding: order of distinct weights
        is never inverted (ties may collapse)."""
        grid = LevelGrid(1e4, 1e5, 32)
        mapping = LinearWeightMapping(-1.0, 1.0, 1e-5, 1e-4)
        arr = np.sort(np.asarray(w))
        q = quantize_weights(arr, mapping, grid)
        assert np.all(np.diff(q) >= -1e-9)

    @given(
        w=WEIGHTS,
        hi_steps=st.integers(8, 31),
    )
    @settings(max_examples=40, deadline=None)
    def test_aged_quantization_never_exceeds_window(self, w, hi_steps):
        grid = LevelGrid(1e4, 1e5, 32)
        mapping = LinearWeightMapping(-1.0, 1.0, 1e-5, 1e-4)
        aged_max = 1e4 + hi_steps * grid.step
        arr = np.asarray(w)
        targets = np.asarray(mapping.weight_to_resistance(arr))
        achieved = grid.quantize(targets, 1e4, aged_max)
        assert np.all(achieved <= aged_max + 1e-6)
        assert np.all(achieved >= 1e4 - 1e-6)


class TestDifferentialProperties:
    @given(w=WEIGHTS)
    @settings(max_examples=40, deadline=None)
    def test_pair_arms_are_complementary(self, w):
        """At most one arm is above g_min for any weight."""
        from repro.mapping.differential import DifferentialPairMapping

        mapping = DifferentialPairMapping(1.0, 1e-5, 1e-4)
        arr = np.asarray(w)
        g_plus, g_minus = mapping.weight_to_conductances(arr)
        raised_both = (g_plus > 1e-5 + 1e-12) & (g_minus > 1e-5 + 1e-12)
        assert not np.any(raised_both)

    @given(w=WEIGHTS, scale=st.floats(0.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_for_any_scale(self, w, scale):
        from repro.mapping.differential import DifferentialPairMapping

        mapping = DifferentialPairMapping(scale, 1e-5, 1e-4)
        arr = np.clip(np.asarray(w), -scale, scale)
        g_plus, g_minus = mapping.weight_to_conductances(arr)
        np.testing.assert_allclose(
            mapping.conductances_to_weight(g_plus, g_minus), arr, atol=1e-9
        )
