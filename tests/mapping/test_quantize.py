"""Tests for mapping-level quantization prediction, including the
paper's core claim: skewed distributions quantize better (Fig. 3/6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.levels import LevelGrid
from repro.mapping.linear import LinearWeightMapping
from repro.mapping.quantize import quantization_error, quantize_weights


@pytest.fixture()
def grid():
    return LevelGrid(1e4, 1e5, 32)


@pytest.fixture()
def mapping():
    return LinearWeightMapping(-1.0, 1.0, 1e-5, 1e-4)


class TestQuantizeWeights:
    def test_levels_are_fixed_points(self, grid, mapping):
        r_levels = grid.resistance_levels
        w_levels = np.asarray(mapping.resistance_to_weight(r_levels))
        out = quantize_weights(w_levels, mapping, grid)
        np.testing.assert_allclose(out, w_levels, atol=1e-9)

    def test_output_shape(self, grid, mapping, rng):
        w = rng.uniform(-1, 1, size=(6, 4))
        assert quantize_weights(w, mapping, grid).shape == (6, 4)

    def test_aged_window_clips(self, grid, mapping):
        """With an aged upper bound, large-resistance (small) weights
        collapse to the bound's weight value."""
        aged_max = 5e4
        w = np.array([-0.9])  # maps to large resistance
        out = quantize_weights(w, mapping, grid, aged_min=1e4, aged_max=aged_max)
        assert out[0] > -0.9  # pushed towards larger conductance/weight


class TestQuantizationError:
    def test_zero_for_exact_levels(self, grid, mapping):
        w_levels = np.asarray(mapping.resistance_to_weight(grid.resistance_levels))
        assert quantization_error(w_levels, mapping, grid) < 1e-12

    def test_more_levels_less_error(self, mapping, rng):
        w = rng.uniform(-1, 1, 500)
        coarse = quantization_error(w, mapping, LevelGrid(1e4, 1e5, 8))
        fine = quantization_error(w, mapping, LevelGrid(1e4, 1e5, 64))
        assert fine < coarse

    def test_skewed_distribution_quantizes_better(self, grid, rng):
        """THE Fig. 3/6 claim: a distribution concentrated at small
        (algebraically low) weights — i.e. large resistances, where the
        conductance levels are dense — has lower quantization error
        than a quasi-normal one over the same weight range."""
        lo, hi = -1.0, 1.0
        normal = np.clip(rng.normal(0.0, 0.35, 4000), lo, hi)
        # Skewed: mass near the low end, thin tail to the right.
        skewed = np.clip(lo + rng.gamma(1.5, 0.12, 4000) * (hi - lo), lo, hi)
        mapping = LinearWeightMapping(lo, hi, 1e-5, 1e-4)
        err_normal = quantization_error(normal, mapping, grid)
        err_skewed = quantization_error(skewed, mapping, grid)
        assert err_skewed < err_normal

    @given(n_levels=st.integers(4, 64))
    @settings(max_examples=30, deadline=None)
    def test_error_bounded_by_coarsest_gap(self, n_levels):
        """Property: RMS error never exceeds the largest conductance
        gap expressed in weight units."""
        rng = np.random.default_rng(0)
        grid = LevelGrid(1e4, 1e5, n_levels)
        mapping = LinearWeightMapping(-1.0, 1.0, 1e-5, 1e-4)
        w = rng.uniform(-1, 1, 300)
        err = quantization_error(w, mapping, grid)
        g_levels = np.sort(grid.conductance_levels)
        max_gap_w = np.max(np.diff(g_levels)) / mapping.slope
        assert err <= max_gap_w
