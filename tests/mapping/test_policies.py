"""Unit tests for the fresh and aging-aware mapping policies."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mapping import AgingAwareMapper, FreshMapper, MappedNetwork
from repro.mapping.aging_aware import RangeSelection


@pytest.fixture()
def mapped_layer(mapped_mlp):
    return mapped_mlp.layers[0]


class TestFreshMapper:
    def test_returns_nominal_window(self, mapped_layer):
        lo, hi = FreshMapper().select_range(mapped_layer)
        assert lo == mapped_layer.device_config.r_min
        assert hi == mapped_layer.device_config.r_max


class TestAgingAwareMapper:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AgingAwareMapper(max_candidates=0)
        with pytest.raises(ConfigurationError):
            AgingAwareMapper(selection_batch=0)
        with pytest.raises(ConfigurationError):
            AgingAwareMapper(tie_tolerance=-1.0)

    def test_fresh_array_has_single_rmax_candidate(self, trained_mlp, device_config):
        """Level-snapped candidates: while no level has been consumed,
        the only candidate is R_max and the policy equals fresh
        mapping.  (An unprogrammed network — any pulse at all costs the
        topmost level.)"""
        net = MappedNetwork(trained_mlp, device_config, seed=21)
        mapper = AgingAwareMapper()
        candidates = mapper.candidate_uppers(net.layers[0])
        assert candidates == [device_config.r_max]

    def test_aged_array_offers_lower_candidates(self, mapped_mlp):
        layer = mapped_mlp.layers[0]
        # Age the devices heavily with low-resistance programming.
        low = np.full(layer.matrix_shape, layer.device_config.r_min)
        for _ in range(60):
            layer.tiles.program(low, only_changed=False)
            layer.tiles.program(low * 2.0, only_changed=False)
        candidates = AgingAwareMapper().candidate_uppers(layer)
        assert min(candidates) < layer.device_config.r_max

    def test_candidates_capped(self, mapped_mlp, rng):
        layer = mapped_mlp.layers[0]
        for _ in range(40):
            directions = (rng.random(layer.matrix_shape) < 0.5).astype(int)
            layer.tiles.step_conductance(directions)
        mapper = AgingAwareMapper(max_candidates=3)
        assert len(mapper.candidate_uppers(layer)) <= 3

    def test_select_without_score_uses_min(self, mapped_layer):
        mapper = AgingAwareMapper()
        lo, hi = mapper.select_range(mapped_layer, None)
        assert lo == mapped_layer.device_config.r_min
        assert hi == min(mapper.candidate_uppers(mapped_layer))
        assert isinstance(mapper.history[-1], RangeSelection)

    def test_select_with_score_picks_best(self, mapped_mlp, rng):
        layer = mapped_mlp.layers[0]
        for _ in range(50):
            directions = (rng.random(layer.matrix_shape) < 0.5).astype(int)
            layer.tiles.step_conductance(directions)
        mapper = AgingAwareMapper(tie_tolerance=0.0)
        candidates = mapper.candidate_uppers(layer)
        target = candidates[len(candidates) // 2]

        def score(_lo, hi):
            return 1.0 if hi == target else 0.0

        _lo, chosen = mapper.select_range(layer, score)
        assert chosen == target
        assert mapper.history[-1].best_score() == 1.0

    def test_tie_break_prefers_largest(self, mapped_mlp, rng):
        layer = mapped_mlp.layers[0]
        for _ in range(50):
            directions = (rng.random(layer.matrix_shape) < 0.5).astype(int)
            layer.tiles.step_conductance(directions)
        mapper = AgingAwareMapper()
        candidates = mapper.candidate_uppers(layer)
        _lo, chosen = mapper.select_range(layer, lambda _l, _h: 0.5)
        assert chosen == max(candidates)
