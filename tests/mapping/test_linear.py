"""Unit + property tests for the Eq. (4) linear mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.mapping.linear import LinearWeightMapping


@pytest.fixture()
def mapping():
    return LinearWeightMapping(w_min=-1.0, w_max=1.0, g_min=1e-5, g_max=1e-4)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearWeightMapping(1.0, -1.0, 1e-5, 1e-4)
        with pytest.raises(ConfigurationError):
            LinearWeightMapping(-1.0, 1.0, 0.0, 1e-4)
        with pytest.raises(ConfigurationError):
            LinearWeightMapping(-1.0, 1.0, 1e-4, 1e-5)

    def test_from_weights(self, rng):
        w = rng.normal(size=(4, 4))
        m = LinearWeightMapping.from_weights(w, 1e-5, 1e-4)
        assert m.w_min == w.min() and m.w_max == w.max()

    def test_from_weights_degenerate(self):
        m = LinearWeightMapping.from_weights(np.full((2, 2), 0.5), 1e-5, 1e-4)
        assert m.w_min < 0.5 < m.w_max

    def test_from_resistance_range(self, rng):
        w = rng.normal(size=10)
        m = LinearWeightMapping.from_resistance_range(w, 1e4, 1e5)
        assert m.g_min == pytest.approx(1e-5)
        assert m.g_max == pytest.approx(1e-4)

    def test_from_resistance_range_validation(self):
        with pytest.raises(ConfigurationError):
            LinearWeightMapping.from_resistance_range(np.zeros(3), 1e5, 1e4)


class TestEndpoints:
    def test_eq4_endpoints(self, mapping):
        """Eq. (4): w_min -> g_min, w_max -> g_max."""
        assert mapping.weight_to_conductance(-1.0) == pytest.approx(1e-5)
        assert mapping.weight_to_conductance(1.0) == pytest.approx(1e-4)

    def test_resistance_endpoints(self, mapping):
        assert mapping.weight_to_resistance(-1.0) == pytest.approx(1e5)
        assert mapping.weight_to_resistance(1.0) == pytest.approx(1e4)

    def test_out_of_range_weights_clip(self, mapping):
        assert mapping.weight_to_conductance(5.0) == pytest.approx(1e-4)
        assert mapping.weight_to_conductance(-5.0) == pytest.approx(1e-5)

    def test_slope_positive(self, mapping):
        assert mapping.slope > 0


class TestInverse:
    def test_roundtrip_in_range(self, mapping, rng):
        w = rng.uniform(-1, 1, size=(3, 5))
        g = mapping.weight_to_conductance(w)
        np.testing.assert_allclose(mapping.conductance_to_weight(g), w, atol=1e-12)

    def test_resistance_roundtrip(self, mapping, rng):
        w = rng.uniform(-1, 1, size=20)
        r = mapping.weight_to_resistance(w)
        np.testing.assert_allclose(mapping.resistance_to_weight(r), w, atol=1e-12)

    def test_inverse_not_clipped(self, mapping):
        """Aged devices can sit outside the nominal range; the inverse
        must report the true (out-of-range) effective weight."""
        w = mapping.conductance_to_weight(2e-4)
        assert w > 1.0


class TestProperties:
    @given(
        w_lo=st.floats(-10.0, 0.0),
        span=st.floats(0.1, 20.0),
        w=st.floats(-10.0, 10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotone_property(self, w_lo, span, w):
        """Bigger weight -> bigger conductance -> smaller resistance."""
        m = LinearWeightMapping(w_lo, w_lo + span, 1e-5, 1e-4)
        w2 = w + 0.05 * span
        g1, g2 = m.weight_to_conductance(w), m.weight_to_conductance(w2)
        assert g2 >= g1
        assert m.weight_to_resistance(w2) <= m.weight_to_resistance(w)

    @given(
        w=st.lists(st.floats(-1.0, 1.0), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, w):
        m = LinearWeightMapping(-1.0, 1.0, 1e-5, 1e-4)
        arr = np.asarray(w)
        back = m.conductance_to_weight(m.weight_to_conductance(arr))
        np.testing.assert_allclose(back, arr, atol=1e-9)
