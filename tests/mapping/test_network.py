"""Unit tests for MappedNetwork / MappedLayer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.mapping import AgingAwareMapper, FreshMapper, MappedNetwork
from repro.mapping.network import clone_model
from repro.nn import Activation, Conv2D, Dense, Flatten, MaxPool2D, Sequential


class TestConstruction:
    def test_requires_built_model(self, device_config):
        model = Sequential([Dense(3)])
        with pytest.raises(ConfigurationError):
            MappedNetwork(model, device_config)

    def test_one_mapped_layer_per_weighted_layer(self, mapped_mlp):
        assert len(mapped_mlp.layers) == 2
        assert [m.layer_index for m in mapped_mlp.layers] == [0, 2]

    def test_dense_matrix_shape(self, mapped_mlp):
        assert mapped_mlp.layers[0].matrix_shape == (4, 16)
        assert mapped_mlp.layers[0].kind == "dense"

    def test_conv_layer_unrolled(self, device_config, rng):
        model = Sequential(
            [Conv2D(4, 3), Activation("relu"), MaxPool2D(2), Flatten(), Dense(2)],
            seed=1,
        ).build((2, 8, 8))
        net = MappedNetwork(model, device_config, seed=2)
        conv = net.layers[0]
        assert conv.kind == "conv"
        assert conv.matrix_shape == (2 * 3 * 3, 4)

    def test_conv_kernel_roundtrip(self, device_config):
        """software kernel -> device matrix -> kernel is the identity."""
        model = Sequential(
            [Conv2D(4, 3), Activation("relu"), Flatten(), Dense(2)], seed=3
        ).build((2, 6, 6))
        net = MappedNetwork(model, device_config, seed=4)
        conv = net.layers[0]
        from repro.mapping.network import _matrix_to_kernel

        kernel = model.layers[0].params["W"]
        np.testing.assert_array_equal(
            _matrix_to_kernel(conv.software_matrix(), model.layers[0]), kernel
        )


class TestMappingLifecycle:
    def test_program_requires_range(self, trained_mlp, device_config):
        net = MappedNetwork(trained_mlp, device_config, seed=5)
        with pytest.raises(ConfigurationError):
            net.layers[0].program()

    def test_hardware_requires_programming(self, trained_mlp, device_config):
        net = MappedNetwork(trained_mlp, device_config, seed=6)
        with pytest.raises(ConfigurationError):
            net.layers[0].hardware_matrix()

    def test_fresh_map_preserves_accuracy(self, mapped_mlp, blob_dataset):
        """On an easy task, 32-level quantization keeps accuracy high."""
        hw = mapped_mlp.score(blob_dataset.x_test, blob_dataset.y_test)
        assert hw > 0.9

    def test_hardware_weights_close_to_software(self, mapped_mlp):
        for mapped in mapped_mlp.layers:
            sw = mapped.software_matrix()
            hw = mapped.hardware_matrix()
            # One quantization step in weight units bounds the error.
            w_range = mapped.mapping.w_max - mapped.mapping.w_min
            assert np.max(np.abs(sw - hw)) < 0.3 * w_range

    def test_set_range_validation(self, mapped_mlp):
        with pytest.raises(ConfigurationError):
            mapped_mlp.layers[0].set_range(1e5, 1e4)

    def test_mapping_ages_devices(self, trained_mlp, device_config):
        net = MappedNetwork(trained_mlp, device_config, seed=7)
        assert net.total_pulses() == 0
        net.map_network()
        assert net.total_pulses() > 0

    def test_remap_with_same_targets_is_cheap(self, mapped_mlp):
        pulses = mapped_mlp.total_pulses()
        mapped_mlp.map_network(FreshMapper())
        # only_changed skips devices already on target.
        assert mapped_mlp.total_pulses() == pulses


class TestAgingAwareIntegration:
    def test_aging_aware_map_with_selection_data(self, trained_mlp, device_config, blob_dataset):
        net = MappedNetwork(trained_mlp, device_config, seed=8)
        mapper = AgingAwareMapper()
        net.map_network(mapper, selection_data=(blob_dataset.x_train[:64], blob_dataset.y_train[:64]))
        assert len(mapper.history) == len(net.layers)
        assert net.score(blob_dataset.x_test, blob_dataset.y_test) > 0.85

    def test_aging_aware_map_without_selection_data(self, trained_mlp, device_config):
        net = MappedNetwork(trained_mlp, device_config, seed=9)
        net.map_network(AgingAwareMapper())
        assert all(m.mapping is not None for m in net.layers)


class TestGradients:
    def test_gradient_sign_matrices_shapes(self, mapped_mlp, blob_dataset):
        grads = mapped_mlp.gradient_sign_matrices(
            blob_dataset.x_train[:16], blob_dataset.y_train[:16]
        )
        for mapped in mapped_mlp.layers:
            assert grads[mapped.layer_index].shape == mapped.matrix_shape

    def test_apply_gradient_signs_moves_weights_downhill(self, mapped_mlp, blob_dataset):
        x, y = blob_dataset.x_train[:64], blob_dataset.y_train[:64]
        model = mapped_mlp.effective_model()
        loss_before = model.evaluate(x, y)[0]
        for _ in range(3):
            grads = mapped_mlp.gradient_sign_matrices(x, y)
            for mapped in mapped_mlp.layers:
                mapped.apply_gradient_signs(grads[mapped.layer_index], 0.0, 0.25)
        loss_after = mapped_mlp.effective_model().evaluate(x, y)[0]
        assert loss_after <= loss_before + 0.05

    def test_apply_gradient_signs_shape_check(self, mapped_mlp):
        with pytest.raises(ShapeError):
            mapped_mlp.layers[0].apply_gradient_signs(np.zeros((2, 2)), 0.5)

    def test_threshold_limits_pulses(self, mapped_mlp, blob_dataset):
        grads = mapped_mlp.gradient_sign_matrices(
            blob_dataset.x_train[:16], blob_dataset.y_train[:16]
        )
        layer = mapped_mlp.layers[0]
        n_loose = layer.apply_gradient_signs(grads[0], threshold=0.0)
        n_tight = layer.apply_gradient_signs(grads[0], threshold=0.9)
        assert n_tight < n_loose

    def test_zero_gradient_applies_nothing(self, mapped_mlp):
        layer = mapped_mlp.layers[0]
        assert layer.apply_gradient_signs(np.zeros(layer.matrix_shape), 0.5) == 0


class TestParasitics:
    def test_ir_drop_reduces_effective_weights(self, trained_mlp, device_config, blob_dataset):
        from repro.crossbar.parasitics import ParasiticModel

        ideal = MappedNetwork(trained_mlp, device_config, seed=71)
        ideal.map_network()
        lossy = MappedNetwork(
            trained_mlp, device_config, seed=71, parasitics=ParasiticModel(50.0)
        )
        lossy.map_network()
        # Attenuation reduces conductances -> effective weights shift
        # towards the low end of the mapping.
        w_ideal = ideal.layers[0].hardware_matrix()
        w_lossy = lossy.layers[0].hardware_matrix()
        assert w_lossy.mean() < w_ideal.mean()

    def test_zero_parasitics_matches_default(self, trained_mlp, device_config):
        from repro.crossbar.parasitics import ParasiticModel

        a = MappedNetwork(trained_mlp, device_config, seed=72)
        a.map_network()
        b = MappedNetwork(
            trained_mlp, device_config, seed=72, parasitics=ParasiticModel(0.0)
        )
        b.map_network()
        import numpy as _np

        _np.testing.assert_allclose(
            a.layers[0].hardware_matrix(), b.layers[0].hardware_matrix()
        )


class TestBookkeeping:
    def test_dead_fraction_fresh(self, mapped_mlp):
        assert mapped_mlp.dead_fraction() == 0.0

    def test_aging_by_layer_keys(self, mapped_mlp):
        aging = mapped_mlp.aging_by_layer()
        assert set(aging) == {0, 2}
        for value in aging.values():
            assert value <= mapped_mlp.device_config.r_max

    def test_apply_drift_changes_hardware(self, mapped_mlp, blob_dataset):
        before = mapped_mlp.layers[0].tiles.resistances().copy()
        mapped_mlp.apply_drift(0.1)
        assert not np.allclose(before, mapped_mlp.layers[0].tiles.resistances())

    def test_clone_model_is_independent(self, trained_mlp):
        clone = clone_model(trained_mlp)
        clone.layers[0].params["W"][...] = 0.0
        assert not np.allclose(trained_mlp.layers[0].params["W"], 0.0)

    def test_effective_model_does_not_mutate_source(self, mapped_mlp, trained_mlp):
        before = trained_mlp.get_weights()
        mapped_mlp.effective_model()
        after = trained_mlp.get_weights()
        for b, a in zip(before, after):
            for key in b:
                np.testing.assert_array_equal(b[key], a[key])
