"""Unit tests for differential-pair mapping."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.mapping.differential import (
    DifferentialMappedNetwork,
    DifferentialPairMapping,
)


@pytest.fixture()
def pair_mapping():
    return DifferentialPairMapping(w_abs_max=1.0, g_min=1e-5, g_max=1e-4)


class TestPairMapping:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DifferentialPairMapping(0.0, 1e-5, 1e-4)
        with pytest.raises(ConfigurationError):
            DifferentialPairMapping(1.0, 1e-4, 1e-5)

    def test_zero_weight_rests_at_g_min(self, pair_mapping):
        g_plus, g_minus = pair_mapping.weight_to_conductances(0.0)
        assert g_plus == pytest.approx(1e-5)
        assert g_minus == pytest.approx(1e-5)

    def test_positive_weight_uses_plus_arm(self, pair_mapping):
        g_plus, g_minus = pair_mapping.weight_to_conductances(0.5)
        assert g_plus > 1e-5
        assert g_minus == pytest.approx(1e-5)

    def test_negative_weight_uses_minus_arm(self, pair_mapping):
        g_plus, g_minus = pair_mapping.weight_to_conductances(-0.5)
        assert g_plus == pytest.approx(1e-5)
        assert g_minus > 1e-5

    def test_extremes_hit_g_max(self, pair_mapping):
        g_plus, _ = pair_mapping.weight_to_conductances(1.0)
        assert g_plus == pytest.approx(1e-4)

    def test_roundtrip(self, pair_mapping, rng):
        w = rng.uniform(-1, 1, size=(4, 5))
        g_plus, g_minus = pair_mapping.weight_to_conductances(w)
        np.testing.assert_allclose(
            pair_mapping.conductances_to_weight(g_plus, g_minus), w, atol=1e-12
        )

    def test_from_weights_scale(self, rng):
        w = rng.uniform(-0.3, 0.3, 100)
        m = DifferentialPairMapping.from_weights(w, 1e-5, 1e-4)
        assert m.w_abs_max == pytest.approx(np.max(np.abs(w)))

    def test_degenerate_all_zero_weights(self):
        m = DifferentialPairMapping.from_weights(np.zeros(5), 1e-5, 1e-4)
        assert m.w_abs_max == 1.0


class TestDifferentialNetwork:
    @pytest.fixture()
    def network(self, trained_mlp, device_config):
        net = DifferentialMappedNetwork(trained_mlp, device_config, seed=3)
        net.map_network()
        return net

    def test_requires_built_model(self, device_config):
        from repro.nn import Dense, Sequential

        with pytest.raises(ConfigurationError):
            DifferentialMappedNetwork(Sequential([Dense(2)]), device_config)

    def test_accuracy_preserved(self, network, blob_dataset):
        assert network.score(blob_dataset.x_test, blob_dataset.y_test) > 0.9

    def test_hardware_close_to_software(self, network):
        for layer in network.layers:
            err = np.abs(layer.hardware_matrix() - layer.software_matrix())
            assert np.percentile(err, 95) < 0.15

    def test_most_devices_at_low_conductance(self, network):
        """The differential representation's free lunch: one arm of
        every pair rests at g_min (large R, low stress)."""
        layer = network.layers[0]
        r_all = np.concatenate(
            [layer.plus.resistances().ravel(), layer.minus.resistances().ravel()]
        )
        at_high_r = np.mean(r_all > 0.9 * network.device_config.r_max)
        assert at_high_r > 0.4

    def test_tuning_moves_downhill(self, network, blob_dataset):
        x, y = blob_dataset.x_train[:64], blob_dataset.y_train[:64]
        network.apply_drift(0.3)
        loss_before = network.evaluate(x, y)[0]
        for _ in range(5):
            grads = network.gradient_sign_matrices(x, y)
            for layer in network.layers:
                layer.apply_gradient_signs(grads[layer.layer_index], 0.25)
        assert network.evaluate(x, y)[0] <= loss_before + 0.05

    def test_gradient_shape_check(self, network):
        with pytest.raises(ShapeError):
            network.layers[0].apply_gradient_signs(np.zeros((2, 2)), 0.5)

    def test_pulse_accounting(self, network):
        assert network.total_pulses() > 0
        assert network.dead_fraction() == 0.0

    def test_unprogrammed_layer_raises(self, trained_mlp, device_config):
        net = DifferentialMappedNetwork(trained_mlp, device_config, seed=5)
        with pytest.raises(ConfigurationError):
            net.layers[0].hardware_matrix()

    def test_mean_stress_lower_than_single_device(
        self, trained_mlp, device_config, blob_dataset
    ):
        """Compared with Eq. (4) single-device mapping of the same
        weights, the differential pair's programmed state dissipates
        less per pulse (most devices rest at g_min)."""
        from repro.mapping import MappedNetwork

        single = MappedNetwork(trained_mlp, device_config, seed=7)
        single.map_network()
        r_single = np.concatenate(
            [m.tiles.resistances().ravel() for m in single.layers]
        )
        single_stress = np.mean(device_config.stress_factor(r_single))

        diff = DifferentialMappedNetwork(trained_mlp, device_config, seed=7)
        diff.map_network()
        assert diff.mean_stress_factor() < single_stress
