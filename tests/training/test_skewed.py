"""Unit tests for skewed-weight training (Section IV-A)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.training import (
    SkewedTrainingConfig,
    TrainConfig,
    build_mlp,
    distribution_skewness,
    layer_betas,
    skewed_train,
    train_baseline,
)


@pytest.fixture()
def skew_config():
    return SkewedTrainingConfig(
        beta_scale=-1.0,
        lambda1=0.05,
        lambda2=1e-3,
        pretrain=TrainConfig(epochs=15),
        skew_epochs=10,
    )


class TestConfig:
    def test_rejects_inverted_lambdas(self):
        with pytest.raises(ConfigurationError):
            SkewedTrainingConfig(lambda1=0.01, lambda2=0.1)

    def test_rejects_zero_epochs(self):
        with pytest.raises(ConfigurationError):
            SkewedTrainingConfig(skew_epochs=0)

    def test_default_pretrain_created(self):
        cfg = SkewedTrainingConfig()
        assert cfg.pretrain.epochs >= 1


class TestLayerBetas:
    def test_one_beta_per_weighted_layer(self, trained_mlp):
        betas = layer_betas(trained_mlp, -1.0)
        assert set(betas) == {0, 2}

    def test_scale_applies(self, trained_mlp):
        b1 = layer_betas(trained_mlp, -1.0)
        b2 = layer_betas(trained_mlp, -2.0)
        for idx in b1:
            assert b2[idx] == pytest.approx(2 * b1[idx])
            assert b1[idx] < 0


class TestSkewedTrain:
    def test_two_phase_histories(self, blob_dataset, skew_config):
        model = build_mlp(4, 3, hidden=(16,), seed=1)
        result = skewed_train(model, blob_dataset, skew_config)
        assert len(result.pretrain_history.loss) == 15
        assert len(result.skew_history.loss) == 10
        assert result.betas

    def test_pretrained_skips_first_phase(self, blob_dataset, skew_config, trained_mlp):
        from repro.mapping.network import clone_model

        model = clone_model(trained_mlp)
        result = skewed_train(model, blob_dataset, skew_config, pretrained=True)
        assert result.pretrain_history.loss == []

    def test_accuracy_roughly_maintained(self, blob_dataset, skew_config):
        """The paper's flexibility claim: skewed training keeps the
        classification quality."""
        model = build_mlp(4, 3, hidden=(16,), seed=2)
        result = skewed_train(model, blob_dataset, skew_config)
        assert result.final_accuracy() > 0.85

    def test_distribution_moves_left_of_baseline(self, blob_dataset, skew_config):
        """Weights concentrate towards the reference (negative) side:
        the mass position within [w_min, w_max] drops."""
        base = build_mlp(4, 3, hidden=(16,), seed=3)
        train_baseline(base, blob_dataset, TrainConfig(epochs=15))
        w_base = base.all_weight_values()
        pos_base = (np.median(w_base) - w_base.min()) / (w_base.max() - w_base.min())

        skew = build_mlp(4, 3, hidden=(16,), seed=3)
        skewed_train(skew, blob_dataset, skew_config)
        w_skew = skew.all_weight_values()
        pos_skew = (np.median(w_skew) - w_skew.min()) / (w_skew.max() - w_skew.min())
        assert pos_skew < pos_base

    def test_right_skewness_increases(self, blob_dataset, skew_config):
        base = build_mlp(4, 3, hidden=(16,), seed=4)
        train_baseline(base, blob_dataset, TrainConfig(epochs=15))
        skew = build_mlp(4, 3, hidden=(16,), seed=4)
        skewed_train(skew, blob_dataset, skew_config)
        assert distribution_skewness(skew.all_weight_values()) > distribution_skewness(
            base.all_weight_values()
        )


class TestSkewness:
    def test_symmetric_is_zero(self, rng):
        w = rng.normal(size=100_000)
        assert abs(distribution_skewness(w)) < 0.05

    def test_right_skew_positive(self, rng):
        w = rng.gamma(2.0, 1.0, size=10_000)
        assert distribution_skewness(w) > 0.5

    def test_degenerate_inputs(self):
        assert distribution_skewness(np.array([1.0, 2.0])) == 0.0
        assert distribution_skewness(np.full(10, 3.0)) == 0.0
