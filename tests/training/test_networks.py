"""Unit tests for the network factories."""

import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.training import build_lenet, build_mlp, build_vggnet


class TestMlp:
    def test_structure(self):
        model = build_mlp(10, 4, hidden=(8, 6), seed=1)
        assert model.built
        dense_layers = [l for l in model.layers if isinstance(l, Dense)]
        assert [l.units for l in dense_layers] == [8, 6, 4]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_mlp(0, 3)
        with pytest.raises(ConfigurationError):
            build_mlp(4, 1)


class TestLenet:
    def test_structure(self):
        model = build_lenet(seed=1)
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        assert len(convs) == 2 and len(denses) == 2
        assert convs[0].kernel_size == 5  # LeNet-5 style first layer

    def test_output_matches_classes(self):
        model = build_lenet(n_classes=7, seed=2)
        assert model.layers[-1].output_shape() == (7,)

    def test_forward_shape(self, rng):
        model = build_lenet(seed=3)
        out = model.forward(rng.normal(size=(2, 1, 12, 12)))
        assert out.shape == (2, 10)

    def test_deterministic_init(self):
        import numpy as np

        a = build_lenet(seed=9).all_weight_values()
        b = build_lenet(seed=9).all_weight_values()
        np.testing.assert_array_equal(a, b)


class TestVggnet:
    def test_structure_conv_heavy(self):
        """The VGG role needs more conv than FC capacity (Fig. 11)."""
        model = build_vggnet(seed=1)
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        assert len(convs) == 5 and len(denses) == 2
        conv_params = sum(l.num_params() for l in convs)
        dense_params = sum(l.num_params() for l in denses)
        assert conv_params > dense_params

    def test_width_doubling(self):
        model = build_vggnet(width=4, seed=2)
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        assert [c.filters for c in convs] == [4, 4, 8, 8, 16]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_vggnet(width=0)

    def test_forward_shape(self, rng):
        model = build_vggnet(width=4, n_classes=20, seed=3)
        out = model.forward(rng.normal(size=(2, 1, 16, 16)))
        assert out.shape == (2, 20)
