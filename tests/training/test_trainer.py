"""Unit tests for baseline training."""

import pytest

from repro.exceptions import ConfigurationError
from repro.training import TrainConfig, build_mlp, train_baseline


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(l2_lambda=-1.0)


class TestTrainBaseline:
    def test_learns_blobs(self, blob_dataset):
        model = build_mlp(4, 3, hidden=(16,), seed=1)
        history = train_baseline(model, blob_dataset, TrainConfig(epochs=20))
        assert history.val_accuracy[-1] > 0.9

    def test_l2_regularizer_installed(self, blob_dataset):
        model = build_mlp(4, 3, hidden=(8,), seed=2)
        train_baseline(model, blob_dataset, TrainConfig(epochs=1, l2_lambda=0.01))
        assert model.regularization_penalty() > 0

    def test_zero_l2_clears_regularizers(self, blob_dataset):
        model = build_mlp(4, 3, hidden=(8,), seed=3)
        train_baseline(model, blob_dataset, TrainConfig(epochs=1, l2_lambda=0.0))
        assert model.regularization_penalty() == 0.0

    def test_l2_shrinks_weights(self, blob_dataset):
        import numpy as np

        weak = build_mlp(4, 3, hidden=(16,), seed=4)
        strong = build_mlp(4, 3, hidden=(16,), seed=4)
        train_baseline(weak, blob_dataset, TrainConfig(epochs=15, l2_lambda=1e-5))
        train_baseline(strong, blob_dataset, TrainConfig(epochs=15, l2_lambda=1e-1))
        assert np.std(strong.all_weight_values()) < np.std(weak.all_weight_values())
