"""Unit tests for the Fig. 5 framework orchestration."""

import pytest

from repro.core import AgingAwareFramework, FrameworkConfig, LifetimeConfig
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.exceptions import ConfigurationError
from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp
from repro.tuning import TuningConfig


@pytest.fixture(scope="module")
def framework():
    data = make_blobs(n_samples=240, n_classes=3, n_features=4, spread=0.4, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=100, write_noise=0.05),
        train=TrainConfig(epochs=12),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=12),
            skew_epochs=6,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=4,
            tuning=TuningConfig(max_iterations=25),
        ),
        tune_samples=96,
        target_fraction=0.9,
    )
    return AgingAwareFramework(
        lambda seed: build_mlp(4, 3, hidden=(16,), seed=seed), data, config, seed=7
    )


class TestConfigValidation:
    def test_target_fraction_range(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(target_fraction=0.0)

    def test_tune_samples_positive(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(tune_samples=0)


class TestTrainingCache:
    def test_models_cached_per_style(self, framework):
        a = framework.trained_model(False)
        b = framework.trained_model(False)
        assert a is b
        c = framework.trained_model(True)
        assert c is not a

    def test_software_accuracy_reasonable(self, framework):
        assert framework.software_accuracy(False) > 0.85
        assert framework.software_accuracy(True) > 0.85


class TestScenarios:
    def test_unknown_scenario_rejected(self, framework):
        with pytest.raises(ConfigurationError):
            framework.run_scenario("nope")

    def test_run_scenario_returns_result(self, framework):
        result = framework.run_scenario("t+t")
        assert result.scenario_key == "t+t"
        assert result.software_accuracy > 0.8
        assert result.target_accuracy <= result.software_accuracy
        assert result.windows

    def test_compare_collects_all(self, framework):
        comparison = framework.compare(("t+t", "st+at"))
        assert set(comparison.results) == {"t+t", "st+at"}
        assert comparison.workload == "blobs"

    def test_scenarios_share_trained_weights(self, framework):
        """T+T and the training cache must reuse the same software
        model — scenario hardware differs, software does not."""
        framework.run_scenario("t+t")
        model_before = framework.trained_model(False)
        framework.run_scenario("t+at")
        assert framework.trained_model(False) is model_before
