"""Unit tests for the sweep orchestrator."""

import pytest

from repro.core.sweep import Sweep, SweepPoint, SweepResult
from repro.exceptions import ConfigurationError


class TestSweep:
    def test_requires_parameter_name(self):
        with pytest.raises(ConfigurationError):
            Sweep("", lambda v, rng: {})

    def test_runs_all_points(self):
        sweep = Sweep("x", lambda v, rng: {"square": v * v}, seed=1)
        result = sweep.run([1, 2, 3])
        assert result.metric("square") == [1.0, 4.0, 9.0]
        assert result.values() == [1, 2, 3]

    def test_per_point_rng_is_order_independent(self):
        def fn(v, rng):
            return {"draw": float(rng.integers(0, 10**9))}

        a = Sweep("x", fn, seed=5).run([1, 2, 3])
        b = Sweep("x", fn, seed=5).run([3, 1])
        draws_a = {p.value: p.metrics["draw"] for p in a.points}
        draws_b = {p.value: p.metrics["draw"] for p in b.points}
        assert draws_a[1] == draws_b[1]
        assert draws_a[3] == draws_b[3]

    def test_error_isolation(self):
        def fn(v, rng):
            if v == 2:
                raise RuntimeError("boom")
            return {"v": v}

        result = Sweep("x", fn, seed=1).run([1, 2, 3])
        assert [p.ok for p in result.points] == [True, False, True]
        assert result.metric("v") == [1.0, 3.0]
        assert "boom" in result.points[1].error

    def test_fail_fast(self):
        def fn(v, rng):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            Sweep("x", fn, seed=1).run([1], fail_fast=True)

    def test_non_dict_return_rejected(self):
        result = Sweep("x", lambda v, rng: 5, seed=1).run([1])
        assert not result.points[0].ok

    def test_table_rendering(self):
        sweep = Sweep("levels", lambda v, rng: {"acc": v / 100}, seed=1)
        result = sweep.run([8, 16])
        table = result.to_table(title="sweep")
        assert "levels" in table and "acc" in table and "sweep" in table

    def test_table_with_errors(self):
        result = SweepResult(parameter="x")
        result.points.append(SweepPoint(value=1, metrics={"m": 1.0}))
        result.points.append(SweepPoint(value=2, error="boom"))
        assert "ERROR" in result.to_table()

    def test_empty_table(self):
        result = SweepResult(parameter="x")
        assert "no successful points" in result.to_table("t")
