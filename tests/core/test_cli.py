"""Unit tests for the command-line interface.

The heavy subcommands run against the fast presets; assertions check
wiring (arguments reach the framework, files land on disk) rather than
simulation quality, which the benchmarks own.
"""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.preset == "lenet-glyphs"
        assert args.scenario == "st+at"
        assert not args.fast

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--preset", "nope"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])

    def test_checkpoint_flag_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.checkpoint_every is None
        assert args.checkpoint_dir == ".repro-checkpoints"
        assert args.resume is None
        args = build_parser().parse_args(
            ["run", "--checkpoint-every", "5", "--checkpoint-dir", "c"]
        )
        assert args.checkpoint_every == 5 and args.checkpoint_dir == "c"

    def test_campaign_journal_flags(self):
        args = build_parser().parse_args(["campaign"])
        assert args.journal is None and not args.resume
        args = build_parser().parse_args(
            ["campaign", "--journal", "j.jsonl", "--resume"]
        )
        assert args.journal == "j.jsonl" and args.resume

    def test_checkpoints_subcommands_parse(self):
        ls = build_parser().parse_args(["checkpoints", "ls", "--dir", "d"])
        assert ls.ckpt_command == "ls" and ls.dir == "d"
        gc = build_parser().parse_args(["checkpoints", "gc", "--keep", "2"])
        assert gc.ckpt_command == "gc" and gc.keep == 2
        ins = build_parser().parse_args(["checkpoints", "inspect", "x.ckpt.json"])
        assert ins.ckpt_command == "inspect" and ins.path == "x.ckpt.json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["checkpoints"])

    def test_profile_flag_variants(self):
        assert build_parser().parse_args(["run"]).profile is None
        assert build_parser().parse_args(["run", "--profile"]).profile == "-"
        args = build_parser().parse_args(["run", "--profile", "perf.json"])
        assert args.profile == "perf.json"
        assert build_parser().parse_args(["compare", "--profile"]).profile == "-"
        assert build_parser().parse_args(["campaign", "--profile"]).profile == "-"


class TestCommands:
    def test_list_presets(self, capsys):
        assert main(["list-presets"]) == 0
        out = capsys.readouterr().out
        assert "lenet-glyphs" in out and "vggnet-shapes" in out

    def test_train_writes_weights(self, tmp_path, capsys):
        weights = tmp_path / "model.npz"
        code = main(
            ["train", "--preset", "lenet-glyphs", "--fast", "--weights", str(weights)]
        )
        assert code == 0
        assert weights.exists()
        assert "test accuracy" in capsys.readouterr().out

    def test_report_from_saved_comparison(self, tmp_path, capsys):
        from repro.core.results import LifetimeResult, ScenarioComparison
        from repro.io import save_comparison

        cmp_path = tmp_path / "cmp.json"
        comparison = ScenarioComparison(workload="glyphs")
        comparison.add(
            LifetimeResult(scenario_key="t+t", lifetime_applications=1000, failed=True)
        )
        save_comparison(comparison, cmp_path)
        out_path = tmp_path / "report.md"
        assert main(["report", str(cmp_path), "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("# Lifetime comparison")

    def test_report_to_stdout(self, tmp_path, capsys):
        from repro.core.results import LifetimeResult, ScenarioComparison
        from repro.io import save_comparison

        cmp_path = tmp_path / "cmp.json"
        comparison = ScenarioComparison(workload="glyphs")
        comparison.add(
            LifetimeResult(scenario_key="t+t", lifetime_applications=1000, failed=True)
        )
        save_comparison(comparison, cmp_path)
        assert main(["report", str(cmp_path)]) == 0
        assert "# Lifetime comparison" in capsys.readouterr().out

    def test_run_writes_result(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        code = main(
            [
                "run",
                "--preset",
                "lenet-glyphs",
                "--fast",
                "--no-cache",
                "--scenario",
                "t+t",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["scenario_key"] == "t+t"
        assert "lifetime" in capsys.readouterr().out

    def test_run_profile_to_stdout_and_file(self, tmp_path, capsys):
        argv = [
            "run",
            "--preset",
            "lenet-glyphs",
            "--fast",
            "--no-cache",
            "--scenario",
            "t+t",
            "--profile",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "perf counters" in out
        assert "network.hardware_reads" in out

        perf_file = tmp_path / "perf.json"
        assert main(argv + [str(perf_file)]) == 0
        snapshot = json.loads(perf_file.read_text())
        assert snapshot["counters"]["lifetime.runs"] >= 1
        assert "timers" in snapshot

    def test_run_populates_and_reuses_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = [
            "run",
            "--preset",
            "lenet-glyphs",
            "--fast",
            "--scenario",
            "t+t",
            "--cache-dir",
            str(cache_dir),
            "--out",
            str(tmp_path / "first.json"),
        ]
        assert main(argv) == 0
        entries = list(cache_dir.glob("*.json"))
        assert len(entries) == 1
        # Second run must be served from the cache: same result JSON,
        # no new cache entries.
        argv[-1] = str(tmp_path / "second.json")
        assert main(argv) == 0
        assert list(cache_dir.glob("*.json")) == entries
        first = json.loads((tmp_path / "first.json").read_text())
        second = json.loads((tmp_path / "second.json").read_text())
        assert first == second

    def test_campaign_resume_requires_journal(self, capsys):
        assert main(["campaign", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().out

    def test_checkpoints_ls_empty_dir(self, tmp_path, capsys):
        assert main(["checkpoints", "ls", "--dir", str(tmp_path)]) == 0
        assert "no checkpoints" in capsys.readouterr().out

    def test_compare_accepts_workers(self, tmp_path, capsys):
        args = build_parser().parse_args(
            ["compare", "--workers", "4", "--no-cache"]
        )
        assert args.workers == 4
        assert args.no_cache
