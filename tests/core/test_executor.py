"""The execution engine's contract: parallel == serial, bit for bit.

Every parallel entry point (``compare``, ``run_scenario_repeats``,
``Sweep.run``) is pinned against its serial output — identical
``LifetimeResult``/``SweepResult`` fields, not approximately equal
ones.  Also covered: the on-disk result cache (hit/miss semantics,
exact round-trip) and failure surfacing (a crashing worker produces a
failed point, never a hung pool).
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.core import (
    AgingAwareFramework,
    FrameworkConfig,
    LifetimeConfig,
    ParallelExecutor,
    ResultCache,
    Sweep,
    Task,
    fingerprint,
)
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.exceptions import ConfigurationError
from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp
from repro.tuning import TuningConfig


def _make_framework():
    """A fresh, fast framework (fixed seed) — one per equivalence arm."""
    data = make_blobs(n_samples=200, n_classes=3, n_features=4, spread=0.4, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=100, write_noise=0.05),
        train=TrainConfig(epochs=8),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=8),
            skew_epochs=4,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=3,
            tuning=TuningConfig(max_iterations=20),
        ),
        tune_samples=64,
        target_fraction=0.9,
    )
    return AgingAwareFramework(
        lambda seed: build_mlp(4, 3, hidden=(12,), seed=seed), data, config, seed=7
    )


@pytest.fixture(scope="module")
def framework():
    return _make_framework()


# -- fingerprinting -----------------------------------------------------------
class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint(1, "a", 2.5) == fingerprint(1, "a", 2.5)

    def test_discriminates(self):
        assert fingerprint(1) != fingerprint(2)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(1.0) != fingerprint(1)

    def test_arrays_by_content(self):
        a = np.arange(6, dtype=np.float64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))
        assert fingerprint(a) != fingerprint(a.astype(np.float32))

    def test_dataclasses_by_fields(self):
        a = DeviceConfig(pulses_to_collapse=100)
        b = DeviceConfig(pulses_to_collapse=100)
        c = DeviceConfig(pulses_to_collapse=200)
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(c)

    def test_dict_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})


# -- result cache -------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        from repro.core.executor import _MISS

        cache = ResultCache(tmp_path / "c")
        assert cache.get("k") is _MISS
        cache.put("k", {"x": 1.5})
        assert cache.get("k") == {"x": 1.5}
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        from repro.core.executor import _MISS

        cache = ResultCache(tmp_path)
        cache.put("k", [1, 2])
        cache.path("k").write_text("{not json")
        assert cache.get("k") is _MISS

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0


# -- generic executor ---------------------------------------------------------
def _square(x):
    return x * x


def _maybe_boom(x):
    if x == 2:
        raise RuntimeError("boom")
    return x


def _die(x):
    os._exit(3)  # simulate a hard worker crash (segfault/OOM-kill)


class TestParallelExecutor:
    def test_rejects_negative_workers(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(workers=-1)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_results_in_task_order(self, workers):
        tasks = [Task(key=str(i), fn=_square, args=(i,)) for i in range(6)]
        outcomes = ParallelExecutor(workers=workers).run(tasks)
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert all(o.ok and not o.cached for o in outcomes)

    def test_closures_cross_the_process_boundary(self):
        offset = 10  # captured by the lambda: needs cloudpickle transport
        tasks = [Task(key=str(i), fn=lambda i=i: i + offset) for i in range(3)]
        outcomes = ParallelExecutor(workers=2).run(tasks)
        assert [o.value for o in outcomes] == [10, 11, 12]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_error_isolation(self, workers):
        tasks = [Task(key=str(i), fn=_maybe_boom, args=(i,)) for i in (1, 2, 3)]
        outcomes = ParallelExecutor(workers=workers).run(tasks)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "boom" in outcomes[1].error
        assert [outcomes[0].value, outcomes[2].value] == [1, 3]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_reraise_propagates_original_exception(self, workers):
        tasks = [Task(key=str(i), fn=_maybe_boom, args=(i,)) for i in (1, 2)]
        with pytest.raises(RuntimeError, match="boom"):
            ParallelExecutor(workers=workers).run(tasks, reraise=True)

    def test_worker_crash_surfaces_not_hangs(self):
        tasks = [Task(key="crash", fn=_die, args=(0,))]
        outcomes = ParallelExecutor(workers=2).run(tasks)
        assert not outcomes[0].ok
        assert "Broken" in outcomes[0].error or "abruptly" in outcomes[0].error

    def test_cache_short_circuits(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = [Task(key="t", fn=_square, args=(4,), cache_key=fingerprint("sq", 4))]
        first = ParallelExecutor(workers=1, cache=cache).run(tasks)
        second = ParallelExecutor(workers=1, cache=cache).run(tasks)
        assert first[0].value == second[0].value == 16
        assert not first[0].cached and second[0].cached

    def test_failed_tasks_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = [
            Task(key="t", fn=_maybe_boom, args=(2,), cache_key=fingerprint("boom"))
        ]
        ParallelExecutor(workers=1, cache=cache).run(tasks)
        assert len(cache) == 0


# -- framework equivalence: the headline guarantee ----------------------------
def test_framework_rejects_negative_workers(framework):
    with pytest.raises(ConfigurationError):
        framework.run_scenario_repeats("t+t", repeats=2, workers=-1)
    with pytest.raises(ConfigurationError):
        framework.compare(("t+t",), workers=-3)


@pytest.mark.parametrize("workers", [1, 4])
def test_run_scenario_repeats_parallel_equals_serial(framework, workers):
    serial = framework.run_scenario_repeats("t+t", repeats=2)
    parallel = framework.run_scenario_repeats("t+t", repeats=2, workers=workers)
    assert serial == parallel  # dataclass equality: every field, bit for bit


@pytest.mark.parametrize("workers", [1, 4])
def test_compare_parallel_equals_serial(framework, workers):
    serial = framework.compare(("t+t", "st+at"))
    parallel = framework.compare(("t+t", "st+at"), workers=workers)
    assert serial.workload == parallel.workload
    assert serial.results == parallel.results


def test_parallel_equivalence_from_fresh_framework(framework):
    """A brand-new framework run parallel-first matches the shared one:
    no hidden dependence on which arm populated the training cache."""
    fresh = _make_framework()
    parallel = fresh.run_scenario_repeats("t+t", repeats=2, workers=4)
    serial = framework.run_scenario_repeats("t+t", repeats=2)
    assert parallel == serial


def test_scenario_cache_roundtrip_is_exact(framework, tmp_path):
    cache = ResultCache(tmp_path)
    fresh = framework.run_scenario("t+t", cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    cached = framework.run_scenario("t+t", cache=cache)
    assert cache.hits == 1
    assert cached == fresh  # JSON round trip preserves every field exactly

    # A different repeat is a different key — miss, not a stale hit.
    other = framework.run_scenario("t+t", repeat=1, cache=cache)
    assert other != fresh
    assert len(cache) == 2


def test_scenario_cache_key_covers_config(framework):
    key = framework.scenario_cache_key("t+t", 0)
    assert key != framework.scenario_cache_key("t+t", 1)
    assert key != framework.scenario_cache_key("st+at", 0)
    altered = dataclasses.replace(
        framework.config, target_fraction=framework.config.target_fraction * 0.99
    )
    original = framework.config
    try:
        framework.config = altered
        assert framework.scenario_cache_key("t+t", 0) != key
    finally:
        framework.config = original


def test_compare_through_cache_equals_direct(framework, tmp_path):
    cache = ResultCache(tmp_path)
    direct = framework.compare(("t+t", "st+at"))
    populated = framework.compare(("t+t", "st+at"), workers=2, cache=cache)
    replayed = framework.compare(("t+t", "st+at"), workers=2, cache=cache)
    assert populated.results == direct.results
    assert replayed.results == direct.results
    assert cache.hits >= 2


def test_config_not_mutated_by_runs(framework):
    """Resolving the per-scenario tuning target must not leak back into
    the shared config (it would poison cache keys between runs)."""
    before = dataclasses.replace(framework.config.lifetime.tuning)
    framework.run_scenario("t+t")
    assert framework.config.lifetime.tuning == before


# -- sweep equivalence --------------------------------------------------------
def _draw_metrics(v, rng):
    return {"draw": float(rng.integers(0, 10**9)), "square": float(v) ** 2}


def _sweep_boom(v, rng):
    if v == 2:
        raise RuntimeError("boom")
    return {"v": float(v)}


def _sweep_die(v, rng):
    if v == 2:
        os._exit(3)
    return {"v": float(v)}


class TestSweepParallel:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_metrics_bit_identical(self, workers):
        serial = Sweep("x", _draw_metrics, seed=5).run([1, 2, 3, 4])
        parallel = Sweep("x", _draw_metrics, seed=5).run([1, 2, 3, 4], workers=workers)
        assert [p.value for p in serial.points] == [p.value for p in parallel.points]
        assert [p.metrics for p in serial.points] == [p.metrics for p in parallel.points]
        assert [p.ok for p in serial.points] == [p.ok for p in parallel.points]

    def test_error_isolation_parallel(self):
        result = Sweep("x", _sweep_boom, seed=1).run([1, 2, 3], workers=4)
        assert [p.ok for p in result.points] == [True, False, True]
        assert "boom" in result.points[1].error
        assert result.metric("v") == [1.0, 3.0]

    def test_error_text_matches_serial(self):
        serial = Sweep("x", _sweep_boom, seed=1).run([2])
        parallel = Sweep("x", _sweep_boom, seed=1).run([2], workers=2)
        assert serial.points[0].error == parallel.points[0].error

    def test_worker_crash_becomes_failed_point(self):
        result = Sweep("x", _sweep_die, seed=1).run([1, 2], workers=2)
        assert len(result.points) == 2
        assert not result.points[1].ok  # crashed, surfaced — pool not hung

    def test_fail_fast_parallel_raises_original(self):
        with pytest.raises(RuntimeError, match="boom"):
            Sweep("x", _sweep_boom, seed=1).run([1, 2, 3], workers=4, fail_fast=True)

    def test_cache_hit_and_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = Sweep("x", _draw_metrics, seed=9)
        first = sweep.run([1, 2], cache=cache, cache_token="v1")
        second = sweep.run([1, 2, 3], cache=cache, cache_token="v1")
        assert [p.cached for p in first.points] == [False, False]
        assert [p.cached for p in second.points] == [True, True, False]
        assert [p.metrics for p in second.points[:2]] == [
            p.metrics for p in first.points
        ]
        # A different token invalidates everything.
        third = sweep.run([1, 2], cache=cache, cache_token="v2")
        assert [p.cached for p in third.points] == [False, False]

    def test_cached_sweep_result_serializes(self, tmp_path):
        from repro.io import load_sweep_result, save_sweep_result

        result = Sweep("x", _draw_metrics, seed=9).run([1, 2])
        path = tmp_path / "sweep.json"
        save_sweep_result(result, path)
        loaded = load_sweep_result(path)
        assert loaded == result
