"""Unit tests for scenario definitions."""

import pytest

from repro.core.scenarios import SCENARIOS, Scenario
from repro.exceptions import ConfigurationError


class TestScenarios:
    def test_paper_scenarios_present(self):
        assert {"t+t", "st+t", "st+at"} <= set(SCENARIOS)

    def test_tt_is_full_baseline(self):
        s = SCENARIOS["t+t"]
        assert not s.skewed_training and not s.aging_aware_mapping

    def test_stat_is_full_framework(self):
        s = SCENARIOS["st+at"]
        assert s.skewed_training and s.aging_aware_mapping

    def test_stt_is_training_only(self):
        s = SCENARIOS["st+t"]
        assert s.skewed_training and not s.aging_aware_mapping

    def test_labels_match_paper(self):
        assert SCENARIOS["t+t"].label == "T+T"
        assert SCENARIOS["st+at"].label == "ST+AT"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SCENARIOS["t+t"].key = "x"

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario("", "X", False, False)
