"""Executor hardening: retries with backoff, timeouts, crash isolation.

Complements ``test_executor.py`` (which pins parallel == serial
equivalence and basic failure surfacing) with the resilience contract:
a transiently failing task is re-run and succeeds, a permanently
crashing worker fails after ``max_retries`` without hanging or taking
its siblings down, a hung task is reclaimed by its timeout, and corrupt
cache entries are quarantined rather than silently re-missed forever.
"""

import os
import time

import pytest

from repro.core import ParallelExecutor, ResultCache, RetryPolicy, Task
from repro.exceptions import ConfigurationError


# -- task bodies (module-level so the pool can ship them) ---------------------
def _square(x):
    return x * x


def _flaky(counter_path, succeed_on):
    """Fail until the ``succeed_on``-th invocation (file-based counter,
    so the count survives worker process boundaries)."""
    count = 1
    if os.path.exists(counter_path):
        with open(counter_path) as handle:
            count = int(handle.read()) + 1
    with open(counter_path, "w") as handle:
        handle.write(str(count))
    if count < succeed_on:
        raise RuntimeError(f"transient failure #{count}")
    return f"ok after {count}"


def _die(_x):
    os._exit(3)  # simulate a hard worker crash (segfault/OOM-kill)


def _hang(_x):
    time.sleep(300)


FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_max=0.05)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-0.1)

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(max_retries=5, backoff_base=0.1, backoff_max=0.35)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)  # capped
        assert policy.delay(10) == pytest.approx(0.35)

    def test_executor_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(task_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(max_pool_rebuilds=-1)


class TestTransientRetry:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_fails_twice_succeeds_third(self, tmp_path, workers):
        counter = str(tmp_path / f"counter-{workers}")
        executor = ParallelExecutor(workers=workers, retry=FAST_RETRY)
        tasks = [
            Task(key="flaky", fn=_flaky, args=(counter, 3)),
            Task(key="square", fn=_square, args=(7,)),
        ]
        start = time.perf_counter()
        outcomes = executor.run(tasks)
        elapsed = time.perf_counter() - start
        assert outcomes[0].ok and outcomes[0].value == "ok after 3"
        assert outcomes[0].attempts == 3
        assert outcomes[1].ok and outcomes[1].value == 49
        # Backoff actually slept between attempts (0.01 + 0.02 at least).
        assert elapsed >= 0.03

    def test_without_retry_first_failure_is_final(self, tmp_path):
        counter = str(tmp_path / "counter")
        outcomes = ParallelExecutor(workers=1).run(
            [Task(key="flaky", fn=_flaky, args=(counter, 3))]
        )
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 1
        assert "transient failure #1" in outcomes[0].error

    def test_retried_success_is_not_double_counted(self, tmp_path):
        """A first-attempt success consumes exactly one attempt."""
        counter = str(tmp_path / "counter")
        outcomes = ParallelExecutor(workers=1, retry=FAST_RETRY).run(
            [Task(key="flaky", fn=_flaky, args=(counter, 1))]
        )
        assert outcomes[0].ok and outcomes[0].attempts == 1


class TestPermanentCrasher:
    def test_crasher_fails_after_max_retries_siblings_survive(self):
        retry = RetryPolicy(max_retries=1, backoff_base=0.01)
        executor = ParallelExecutor(workers=2, retry=retry)
        tasks = [
            Task(key="good-1", fn=_square, args=(2,)),
            Task(key="poison", fn=_die, args=(0,)),
            Task(key="good-2", fn=_square, args=(3,)),
        ]
        outcomes = executor.run(tasks)
        assert outcomes[0].ok and outcomes[0].value == 4
        assert outcomes[2].ok and outcomes[2].value == 9
        poison = outcomes[1]
        assert not poison.ok
        assert poison.attempts == 2  # 1 + max_retries
        assert "Broken" in poison.error or "abruptly" in poison.error

    def test_reraise_propagates_after_retries(self):
        retry = RetryPolicy(max_retries=1, backoff_base=0.01)
        executor = ParallelExecutor(workers=2, retry=retry)
        with pytest.raises(Exception):
            executor.run([Task(key="poison", fn=_die, args=(0,))], reraise=True)


class TestTimeout:
    def test_hung_task_reclaimed_siblings_complete(self):
        executor = ParallelExecutor(workers=2)
        tasks = [
            Task(key="hung", fn=_hang, args=(0,), timeout=1.0),
            Task(key="good", fn=_square, args=(5,)),
        ]
        start = time.perf_counter()
        outcomes = executor.run(tasks)
        elapsed = time.perf_counter() - start
        assert elapsed < 60  # nowhere near the 300s sleep
        assert not outcomes[0].ok
        assert "timeout" in outcomes[0].error.lower()
        assert outcomes[1].ok and outcomes[1].value == 25

    def test_executor_wide_timeout_applies_to_all_tasks(self):
        executor = ParallelExecutor(workers=2, task_timeout=1.0)
        outcomes = executor.run([Task(key="hung", fn=_hang, args=(0,))])
        assert not outcomes[0].ok
        assert "timeout" in outcomes[0].error.lower()

    def test_per_task_timeout_overrides_executor_default(self):
        # Generous executor default, tight per-task override.
        executor = ParallelExecutor(workers=2, task_timeout=200.0)
        start = time.perf_counter()
        outcomes = executor.run(
            [Task(key="hung", fn=_hang, args=(0,), timeout=1.0)]
        )
        assert time.perf_counter() - start < 60
        assert not outcomes[0].ok

    def test_serial_mode_ignores_timeout(self):
        """Documented: in-process execution cannot be preempted."""
        outcomes = ParallelExecutor(workers=1).run(
            [Task(key="quick", fn=_square, args=(4,), timeout=0.001)]
        )
        assert outcomes[0].ok and outcomes[0].value == 16


class TestCacheQuarantine:
    def test_corrupt_entry_quarantined_and_logged(self, tmp_path, caplog):
        from repro.core.executor import _MISS

        cache = ResultCache(tmp_path)
        cache.put("k", {"x": 1})
        cache.path("k").write_text("{not json")
        with caplog.at_level("WARNING"):
            assert cache.get("k") is _MISS
        assert cache.quarantined == 1
        assert not cache.path("k").exists()
        quarantined = cache.path("k").with_name(cache.path("k").name + ".corrupt")
        assert quarantined.exists()
        assert "{not json" in quarantined.read_text()
        assert any("quarantined" in rec.getMessage() for rec in caplog.records)

    def test_quarantined_entry_can_be_rewritten(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"x": 1})
        cache.path("k").write_text("garbage")
        cache.get("k")
        cache.put("k", {"x": 2})
        assert cache.get("k") == {"x": 2}

    def test_wrong_schema_is_quarantined(self, tmp_path):
        from repro.core.executor import _MISS
        from repro.io import save_json_atomic

        cache = ResultCache(tmp_path)
        save_json_atomic(
            {"schema": "bogus/v99", "payload": 1}, cache.path("k")
        )
        assert cache.get("k") is _MISS
        assert cache.quarantined == 1
