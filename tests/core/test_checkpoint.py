"""Unit tests for the checkpoint/resume subsystem (DESIGN.md §10).

Covers the snapshot file format (atomicity is delegated to
:func:`repro.io.save_json_atomic`; here we verify versioning, content
hashing and corruption detection), the capture/restore round trip on a
real mid-run simulator, directory management (ls/gc semantics) and the
crash-safe campaign journal.  The end-to-end kill-and-resume
bit-identity property lives in
``tests/integration/test_checkpoint_resume.py``.
"""

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_SUFFIX,
    CheckpointManager,
    RunJournal,
    _decode_array,
    _encode_array,
    capture_simulator,
    inspect_checkpoint,
    load_checkpoint,
    restore_rng,
    restore_simulator,
    rng_state,
    save_checkpoint,
)
from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
from repro.exceptions import CheckpointError, ConfigurationError
from repro.mapping import MappedNetwork
from repro.tuning import TuningConfig


@pytest.fixture()
def simulator(trained_mlp, device_config, blob_dataset):
    network = MappedNetwork(trained_mlp, device_config, seed=41)
    network.map_network()
    config = LifetimeConfig(
        apps_per_window=1000,
        drift_magnitude=0.05,
        max_windows=4,
        tuning=TuningConfig(target_accuracy=0.9, max_iterations=20),
    )
    return LifetimeSimulator(
        network,
        blob_dataset.x_train[:96],
        blob_dataset.y_train[:96],
        config=config,
        seed=42,
    )


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64", "bool"])
    def test_bit_exact_roundtrip(self, dtype, rng):
        arr = (rng.standard_normal((5, 7)) * 100).astype(dtype)
        out = _decode_array(_encode_array(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_non_contiguous_input(self, rng):
        arr = rng.standard_normal((8, 8))[::2, 1::3]
        assert np.array_equal(_decode_array(_encode_array(arr)), arr)

    def test_special_floats_survive(self):
        arr = np.array([np.nan, np.inf, -np.inf, -0.0, 1e-308])
        out = _decode_array(_encode_array(arr))
        assert out.tobytes() == arr.tobytes()

    def test_decoded_array_is_writable(self, rng):
        out = _decode_array(_encode_array(rng.standard_normal(4)))
        out[0] = 1.0  # np.frombuffer alone would be read-only


class TestRngState:
    def test_exact_stream_position(self):
        gen = np.random.default_rng(7)
        gen.standard_normal(13)  # advance mid-stream
        state = rng_state(gen)
        expected = gen.standard_normal(50)
        clone = np.random.default_rng(0)
        restore_rng(clone, state)
        assert np.array_equal(clone.standard_normal(50), expected)

    def test_state_is_json_serializable(self):
        state = rng_state(np.random.default_rng(3))
        assert json.loads(json.dumps(state)) == state

    def test_bit_generator_mismatch_rejected(self):
        state = rng_state(np.random.default_rng(3))
        other = np.random.Generator(np.random.MT19937(3))
        with pytest.raises(CheckpointError, match="bit-generator mismatch"):
            restore_rng(other, state)


class TestSnapshotFile:
    PAYLOAD = {"meta": {"scenario_key": "t+t"}, "layers": [], "n": 3}

    def test_roundtrip(self, tmp_path):
        path = tmp_path / f"a{CHECKPOINT_SUFFIX}"
        assert save_checkpoint(self.PAYLOAD, path) == path
        assert load_checkpoint(path) == self.PAYLOAD

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "nope.ckpt.json")

    def test_unparseable_file(self, tmp_path):
        path = tmp_path / "torn.ckpt.json"
        path.write_text('{"schema": 1, "kind": "repro-life')
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "other.ckpt.json"
        path.write_text(json.dumps({"schema": 1, "payload": {}}))
        with pytest.raises(CheckpointError, match="not a lifetime checkpoint"):
            load_checkpoint(path)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "future.ckpt.json"
        save_checkpoint(self.PAYLOAD, path)
        document = json.loads(path.read_text())
        document["schema"] = CHECKPOINT_SCHEMA + 1
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="unknown checkpoint schema"):
            load_checkpoint(path)

    def test_bit_rot_detected(self, tmp_path):
        path = tmp_path / "rot.ckpt.json"
        save_checkpoint(self.PAYLOAD, path)
        document = json.loads(path.read_text())
        document["payload"]["n"] = 4  # flip a bit past the recorded digest
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="content hash mismatch"):
            load_checkpoint(path)


class TestCaptureRestore:
    def _mid_run_payload(self, simulator):
        result = simulator.run("t+t")
        return capture_simulator(
            simulator, result, len(result.windows), result.lifetime_applications
        )

    def test_capture_draws_no_randomness(self, simulator):
        result = simulator.run("t+t")
        before = rng_state(simulator.tuner._rng)
        capture_simulator(simulator, result, 4, 4000)
        assert rng_state(simulator.tuner._rng) == before

    def test_roundtrip_restores_exact_state(self, simulator, tmp_path):
        payload = self._mid_run_payload(simulator)
        path = save_checkpoint(payload, tmp_path / f"t+t{CHECKPOINT_SUFFIX}")
        restored, result, next_window, applications = restore_simulator(
            load_checkpoint(path)
        )
        assert next_window == len(result.windows)
        assert applications == result.lifetime_applications
        for original, clone in zip(restored.network.layers, simulator.network.layers):
            for (_, arm_a), (_, arm_b) in zip(
                # capture/restore iterate arms in this same order
                _layer_arms_pair(original),
                _layer_arms_pair(clone),
            ):
                for (_, _, ta), (_, _, tb) in zip(arm_a.iter_tiles(), arm_b.iter_tiles()):
                    assert np.array_equal(ta.resistance, tb.resistance)
                    assert np.array_equal(ta.stress_time, tb.stress_time)
                    assert np.array_equal(ta.pulse_counts, tb.pulse_counts)
                    assert ta.state_version == tb.state_version
                    assert rng_state(ta._rng) == rng_state(tb._rng)
        assert rng_state(restored.tuner._rng) == rng_state(simulator.tuner._rng)

    def test_missing_layer_rejected(self, simulator):
        payload = self._mid_run_payload(simulator)
        payload["layers"][0]["layer_index"] = 99
        with pytest.raises(CheckpointError, match="missing from the restored network"):
            restore_simulator(payload)

    def test_tile_shape_mismatch_rejected(self, simulator):
        payload = self._mid_run_payload(simulator)
        tile_doc = payload["layers"][0]["arms"][0]["tiles"][0]
        tile_doc["resistance"]["shape"] = [1, 1]
        with pytest.raises(CheckpointError, match="tile shape mismatch"):
            restore_simulator(payload)

    def test_fault_stream_without_schedule_rejected(self, simulator):
        payload = self._mid_run_payload(simulator)
        payload["rng"]["fault"] = payload["rng"]["tuner"]
        with pytest.raises(CheckpointError, match="no fault schedule"):
            restore_simulator(payload)

    def test_inspect_summary(self, simulator, tmp_path):
        payload = self._mid_run_payload(simulator)
        path = save_checkpoint(payload, tmp_path / f"t+t{CHECKPOINT_SUFFIX}")
        info = inspect_checkpoint(path)
        assert info["scenario_key"] == "t+t"
        assert info["next_window"] == 4
        assert info["windows_recorded"] == 4
        assert info["schema"] == CHECKPOINT_SCHEMA
        assert info["layers"] == len(simulator.network.layers)
        assert info["tiles"] >= info["layers"]
        assert info["devices"] > 0
        assert info["bytes"] == path.stat().st_size


def _layer_arms_pair(mapped):
    from repro.core.checkpoint import _layer_arms

    return _layer_arms(mapped)


class TestManager:
    PAYLOAD = {"meta": {}, "layers": []}

    def test_filenames_and_sanitization(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.path_for("st+at-r0", 7).name == f"st+at-r0-w00007{CHECKPOINT_SUFFIX}"
        assert "/" not in manager.path_for("a/b c", 1).stem

    def test_entries_and_latest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for window in (4, 2, 6):
            manager.save(self.PAYLOAD, run_id="t+t-r0", window=window)
        manager.save(self.PAYLOAD, run_id="st+at-r0", window=3)
        (tmp_path / "notes.txt").write_text("ignored")
        (tmp_path / f"malformed{CHECKPOINT_SUFFIX}").write_text("{}")
        entries = manager.entries()
        assert [(e.run_id, e.window) for e in entries] == [
            ("st+at-r0", 3),
            ("t+t-r0", 2),
            ("t+t-r0", 4),
            ("t+t-r0", 6),
        ]
        assert manager.latest().name == f"t+t-r0-w00006{CHECKPOINT_SUFFIX}"
        assert manager.latest(run_id="st+at-r0").name == (
            f"st+at-r0-w00003{CHECKPOINT_SUFFIX}"
        )
        assert manager.latest(run_id="unknown") is None

    def test_gc_keeps_newest_per_run(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for window in (1, 2, 3):
            manager.save(self.PAYLOAD, run_id="a", window=window)
        manager.save(self.PAYLOAD, run_id="b", window=1)
        removed = manager.gc(keep=2)
        assert [p.name for p in removed] == [f"a-w00001{CHECKPOINT_SUFFIX}"]
        assert len(manager.entries()) == 3

    def test_gc_scoped_to_run(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(self.PAYLOAD, run_id="a", window=1)
        manager.save(self.PAYLOAD, run_id="b", window=1)
        removed = manager.gc(keep=0, run_id="a")
        assert [p.name for p in removed] == [f"a-w00001{CHECKPOINT_SUFFIX}"]
        assert [e.run_id for e in manager.entries()] == ["b"]

    def test_gc_negative_keep_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path).gc(keep=-1)


class TestJournal:
    def test_record_and_replay(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("k1", {"x": 1})
        journal.record("k2", {"x": 2})
        journal.record("k1", {"x": 999})  # idempotent: first write wins
        assert len(path.read_text().splitlines()) == 2
        relaunch = RunJournal(path)
        assert len(relaunch) == 2
        assert "k1" in relaunch and relaunch.get("k1") == {"x": 1}
        assert relaunch.dropped_lines == 0

    def test_fresh_start_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path).record("k1", {"x": 1})
        assert len(RunJournal(path, resume=False)) == 0
        assert not path.exists() or path.read_text() == ""

    def test_corrupt_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("k1", {"x": 1})
        journal.record("k2", {"x": 2})
        # Simulate a crash mid-append: truncate inside the last line.
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        relaunch = RunJournal(path)
        assert relaunch.dropped_lines == 1
        assert "k1" in relaunch and "k2" not in relaunch

    def test_tampered_line_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("k1", {"x": 1})
        line = json.loads(path.read_text())
        line["payload"] = {"x": 42}  # digest no longer matches
        path.write_text(json.dumps(line) + "\n")
        relaunch = RunJournal(path)
        assert relaunch.dropped_lines == 1
        assert "k1" not in relaunch

    def test_unknown_schema_line_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("k1", {"x": 1})
        line = json.loads(path.read_text())
        line["schema"] = 99
        path.write_text(json.dumps(line) + "\n")
        assert len(RunJournal(path)) == 0

    def test_append_after_torn_tail_starts_fresh_line(self, tmp_path):
        """Regression: welding a record onto a newline-less torn tail
        would corrupt the new record too."""
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("k1", {"x": 1})
        journal.record("k2", {"x": 2})
        path.write_bytes(path.read_bytes()[:-9])  # tear the k2 line
        relaunch = RunJournal(path)
        relaunch.record("k2", {"x": 2})
        final = RunJournal(path)
        assert sorted(final.entries) == ["k1", "k2"]
        assert final.dropped_lines == 1  # the torn line, nothing else

    def test_appends_survive_alongside_replay(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path).record("k1", {"x": 1})
        relaunch = RunJournal(path)
        relaunch.record("k2", {"x": 2})
        third = RunJournal(path)
        assert sorted(third.entries) == ["k1", "k2"]


class TestJournalSharing:
    """Two journal handles on one file: the service-worker access pattern."""

    def test_refresh_picks_up_sibling_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        mine = RunJournal(path)
        sibling = RunJournal(path)
        sibling.record("k1", {"x": 1})
        assert "k1" not in mine
        assert mine.refresh() == 1
        assert mine.get("k1") == {"x": 1}
        assert mine.refresh() == 0  # incremental: nothing new to read

    def test_racing_writers_record_each_key_once(self, tmp_path):
        path = tmp_path / "run.jsonl"
        a = RunJournal(path)
        b = RunJournal(path)
        a.record("k", {"x": 1})
        b.record("k", {"x": 2})  # loser rescans under the lock, backs off
        assert len(path.read_text().splitlines()) == 1
        assert RunJournal(path).get("k") == {"x": 1}

    def test_refresh_does_not_count_in_flight_append_as_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        mine = RunJournal(path)
        mine.record("k1", {"x": 1})
        # A sibling is mid-append: the file ends without a newline.
        with open(path, "ab") as handle:
            handle.write(b'{"partial')
        assert mine.refresh() == 0
        assert mine.dropped_lines == 0
        # The sibling finishes its line; refresh now consumes it whole.
        sibling = RunJournal(path)
        sibling.record("k2", {"x": 2})
        assert mine.refresh() >= 1
        assert "k2" in mine

    def test_torn_tail_completed_by_live_writer_uncounts_drop(self, tmp_path):
        """A load-time 'torn tail' that turns out to be a live writer's
        in-flight append must not stay counted as a dropped line."""
        path = tmp_path / "run.jsonl"
        writer = RunJournal(path)
        writer.record("k1", {"x": 1})
        first = path.read_bytes()
        writer.record("k2", {"x": 2})
        second_line = path.read_bytes()[len(first):]
        # Reader attaches while the second line is half-written...
        path.write_bytes(first + second_line[:20])
        reader = RunJournal(path)
        assert reader.dropped_lines == 1  # provisionally torn
        # ...then the writer's append completes.
        path.write_bytes(first + second_line)
        reader.refresh()
        assert "k2" in reader
        assert reader.dropped_lines == 0  # provisional drop rolled back

    def test_concurrent_processes_append_exactly_once(self, tmp_path):
        """Hammer one journal file from 4 processes; every key must land
        exactly once and every line must verify."""
        import multiprocessing

        path = tmp_path / "run.jsonl"
        keys = [f"k{i}" for i in range(12)]
        procs = [
            multiprocessing.Process(target=_journal_hammer, args=(path, keys, w))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        final = RunJournal(path)
        assert sorted(final.entries) == sorted(keys)
        assert final.dropped_lines == 0
        assert len(path.read_text().splitlines()) == len(keys)


def _journal_hammer(path, keys, worker: int) -> None:
    journal = RunJournal(path)
    order = keys if worker % 2 == 0 else list(reversed(keys))
    for key in order:
        journal.refresh()
        journal.record(key, {"key": key, "value": len(key)})
