"""Unit tests for persistence (weights, results, comparisons)."""

import numpy as np
import pytest

from repro.core.results import LifetimeResult, ScenarioComparison, WindowRecord
from repro.exceptions import ConfigurationError, CorruptStateError
from repro.io import (
    load_comparison,
    load_json_guarded,
    load_result,
    load_weights,
    result_from_dict,
    result_to_dict,
    save_comparison,
    save_json_guarded,
    save_result,
    save_weights,
)
from repro.nn import Activation, Dense, Sequential


def make_result() -> LifetimeResult:
    result = LifetimeResult(
        scenario_key="st+at",
        lifetime_applications=120_000,
        failed=True,
        software_accuracy=0.91,
        target_accuracy=0.85,
    )
    result.windows.append(
        WindowRecord(
            window_index=0,
            applications_total=10_000,
            tuning_iterations=12,
            converged=True,
            accuracy_after=0.9,
            pulses_total=400,
            dead_fraction=0.01,
            aged_upper_by_layer={0: 99_000.0, 2: 98_500.0},
        )
    )
    return result


class TestWeights:
    def test_round_trip(self, tmp_path, trained_mlp, blob_dataset):
        path = tmp_path / "weights.npz"
        save_weights(trained_mlp, path)
        fresh = Sequential(
            [Dense(16), Activation("relu"), Dense(3)], seed=99
        ).build((4,))
        assert not np.allclose(
            fresh.layers[0].params["W"], trained_mlp.layers[0].params["W"]
        )
        load_weights(fresh, path)
        np.testing.assert_array_equal(
            fresh.layers[0].params["W"], trained_mlp.layers[0].params["W"]
        )
        assert fresh.score(blob_dataset.x_test, blob_dataset.y_test) == pytest.approx(
            trained_mlp.score(blob_dataset.x_test, blob_dataset.y_test)
        )

    def test_missing_key_rejected(self, tmp_path, trained_mlp):
        path = tmp_path / "weights.npz"
        save_weights(trained_mlp, path)
        bigger = Sequential(
            [Dense(16), Activation("relu"), Dense(3), Dense(2)], seed=1
        ).build((4,))
        with pytest.raises(ConfigurationError):
            load_weights(bigger, path)


class TestGuardedJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.json"
        payload = {"status": "running", "nested": {"x": [1, 2, 3]}}
        save_json_guarded(payload, path)
        assert load_json_guarded(path) == payload

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_json_guarded(tmp_path / "nope.json")

    def test_torn_write_detected(self, tmp_path):
        path = tmp_path / "state.json"
        save_json_guarded({"status": "running"}, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptStateError):
            load_json_guarded(path)

    def test_bit_rot_detected_by_checksum(self, tmp_path):
        path = tmp_path / "state.json"
        save_json_guarded({"status": "running"}, path)
        # Flip payload content while keeping the file valid JSON: only
        # the embedded digest can catch this.
        text = path.read_text().replace("running", "rynning")
        path.write_text(text)
        with pytest.raises(CorruptStateError, match="checksum"):
            load_json_guarded(path)

    def test_unguarded_document_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text('{"status": "running"}')
        with pytest.raises(CorruptStateError):
            load_json_guarded(path)


class TestResults:
    def test_dict_round_trip(self):
        result = make_result()
        back = result_from_dict(result_to_dict(result))
        assert back.scenario_key == result.scenario_key
        assert back.lifetime_applications == result.lifetime_applications
        assert back.windows[0].aged_upper_by_layer == {0: 99_000.0, 2: 98_500.0}

    def test_file_round_trip(self, tmp_path):
        result = make_result()
        path = tmp_path / "result.json"
        save_result(result, path)
        back = load_result(path)
        assert back.iteration_trace() == result.iteration_trace()
        assert back.failed is True

    def test_comparison_round_trip(self, tmp_path):
        comparison = ScenarioComparison(workload="glyphs")
        comparison.add(make_result())
        path = tmp_path / "cmp.json"
        save_comparison(comparison, path)
        back = load_comparison(path)
        assert back.workload == "glyphs"
        assert set(back.results) == {"st+at"}
        assert back.results["st+at"].lifetime_applications == 120_000
