"""Unit tests for experiment presets."""

from repro.core.presets import (
    PRESETS,
    blobs_mini,
    blobs_wide,
    lenet_glyphs,
    vggnet_shapes,
)


class TestPresets:
    def test_registry(self):
        assert set(PRESETS) == {
            "blobs-mini",
            "blobs-wide",
            "lenet-glyphs",
            "vggnet-shapes",
        }

    def test_blobs_preset_builds(self):
        preset = blobs_mini(fast=True)
        data = preset.make_dataset()
        model = preset.build_network(1)
        assert data.n_classes == 3
        out = model.forward(data.x_train[:2])
        assert out.shape == (2, 3)

    def test_blobs_fast_variant_is_smaller(self):
        fast = blobs_mini(fast=True)
        full = blobs_mini(fast=False)
        assert fast.make_dataset().n_train < full.make_dataset().n_train
        assert (
            fast.framework_config.lifetime.max_windows
            < full.framework_config.lifetime.max_windows
        )

    def test_blobs_wide_preset_builds(self):
        preset = blobs_wide(fast=True)
        data = preset.make_dataset()
        model = preset.build_network(1)
        assert data.n_classes == 6
        out = model.forward(data.x_train[:2])
        assert out.shape == (2, 6)

    def test_blobs_wide_matrices_are_wide(self):
        # The point of the preset: fast mode shrinks the horizon, never
        # the matrices, so backend benchmarks see real GEMM sizes.
        fast = blobs_wide(fast=True)
        full = blobs_wide(fast=False)
        model = fast.build_network(1)
        widths = [p.shape for layer in model.layers for p in getattr(layer, "params", {}).values()]
        assert (32, 256) in widths and (256, 128) in widths
        assert fast.make_dataset().n_test == full.make_dataset().n_test
        assert (
            fast.framework_config.lifetime.max_windows
            < full.framework_config.lifetime.max_windows
        )

    def test_lenet_preset_builds(self):
        preset = lenet_glyphs(fast=True)
        data = preset.make_dataset()
        model = preset.build_network(1)
        assert data.n_classes == 10
        assert model.built
        out = model.forward(data.x_train[:2])
        assert out.shape == (2, 10)

    def test_vgg_preset_builds(self):
        preset = vggnet_shapes(fast=True)
        data = preset.make_dataset()
        model = preset.build_network(1)
        assert data.n_classes == 20
        out = model.forward(data.x_train[:2])
        assert out.shape == (2, 20)

    def test_fast_variants_are_smaller(self):
        fast = lenet_glyphs(fast=True)
        full = lenet_glyphs(fast=False)
        assert fast.make_dataset().n_train < full.framework_config.tune_samples * 10
        assert (
            fast.framework_config.lifetime.max_windows
            < full.framework_config.lifetime.max_windows
        )

    def test_vgg_skew_is_asymmetric(self):
        """Deviation from the paper's Table II (documented in
        EXPERIMENTS.md): the scaled-down VGG needs lambda1 > lambda2 to
        place the weight mass at the low end of the range."""
        preset = vggnet_shapes(fast=False)
        cfg = preset.framework_config.skewed
        assert cfg.lambda1 > cfg.lambda2
        assert cfg.beta_scale < 0
