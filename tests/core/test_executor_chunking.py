"""Chunked submission, seeded retry jitter, and shared-journal draining.

The three scheduling upgrades behind the campaign service, each pinned
to the engine's core invariant: scheduling may change, results may not.

* :func:`adaptive_chunk_size` + chunked pool submission — identical
  outcomes, identical ordering, identical error isolation to the
  historical one-future-per-task path;
* :class:`RetryPolicy` seeded jitter — deterministic, bounded,
  per-worker decorrelated backoff delays;
* two executors draining one grid through a shared ``RunJournal`` /
  ``ResultCache`` — every point lands exactly once, results
  bit-identical to a lone serial run.
"""

import threading

import pytest

from repro.core import (
    ParallelExecutor,
    ResultCache,
    RetryPolicy,
    RunJournal,
    Task,
    adaptive_chunk_size,
)
from repro.exceptions import ConfigurationError


def _square(x):
    return x * x


def _boom_on_two(x):
    if x == 2:
        raise RuntimeError("boom at 2")
    return x


def _tasks(n, fn=_square):
    return [Task(key=f"t{i}", fn=fn, args=(i,)) for i in range(n)]


# -- adaptive chunk sizing ----------------------------------------------------
class TestAdaptiveChunkSize:
    def test_empty_and_tiny_grids_stay_unchunked(self):
        assert adaptive_chunk_size(0, workers=4) == 1
        assert adaptive_chunk_size(1, workers=4) == 1
        assert adaptive_chunk_size(7, workers=4) == 1  # the 7-point bench grid

    def test_large_grid_amortizes(self):
        # 64 points / (4 workers * 4-deep oversubscription) = 4 per chunk
        assert adaptive_chunk_size(64, workers=4) == 4
        assert adaptive_chunk_size(256, workers=4) == 16

    def test_max_chunk_cap(self):
        assert adaptive_chunk_size(100_000, workers=1) == 32
        assert adaptive_chunk_size(100_000, workers=1, max_chunk=8) == 8

    def test_oversubscription_keeps_tail_balanced(self):
        # Every worker gets multiple chunks, so one slow chunk cannot
        # serialize the whole grid behind it.
        n, workers = 64, 4
        chunk = adaptive_chunk_size(n, workers)
        assert n / chunk >= workers * 4

    def test_executor_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(workers=2, chunk_size=0)


# -- chunked execution equivalence --------------------------------------------
class TestChunkedEquivalence:
    @pytest.mark.parametrize("chunk_size", [None, 1, 3, 64])
    def test_results_match_serial_in_order(self, chunk_size):
        serial = [o.value for o in ParallelExecutor(workers=0).run(_tasks(10))]
        chunked = [
            o.value
            for o in ParallelExecutor(workers=2, chunk_size=chunk_size).run(
                _tasks(10)
            )
        ]
        assert chunked == serial == [i * i for i in range(10)]

    def test_failure_isolated_within_chunk(self):
        # Task 2 raises; its chunk-mates (same pool submission) succeed.
        outcomes = ParallelExecutor(workers=2, chunk_size=5).run(
            _tasks(10, fn=_boom_on_two)
        )
        assert not outcomes[2].ok
        assert "boom at 2" in str(outcomes[2].error)
        assert [o.value for o in outcomes if o.ok] == [
            i for i in range(10) if i != 2
        ]

    def test_failed_chunk_member_retries_alone(self, tmp_path):
        # Retry machinery still operates per-task under chunking: the
        # one flaky task is re-run, not its whole chunk.
        flaky = tmp_path / "flaky"

        def sometimes(x):
            if x == 3 and not flaky.exists():
                flaky.write_text("tried")
                raise RuntimeError("transient")
            return x

        outcomes = ParallelExecutor(
            workers=0,
            retry=RetryPolicy(max_retries=2, backoff_base=0.0),
            chunk_size=4,
        ).run(_tasks(8, fn=sometimes))
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == list(range(8))

    def test_chunked_cache_hits_short_circuit(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = [
            Task(key=f"t{i}", fn=_square, args=(i,), cache_key=f"ck{i}")
            for i in range(6)
        ]
        ParallelExecutor(workers=2, chunk_size=3, cache=cache).run(tasks)
        again = ParallelExecutor(workers=2, chunk_size=3, cache=cache).run(tasks)
        assert [o.value for o in again] == [i * i for i in range(6)]
        assert cache.hits >= 6


# -- seeded retry jitter ------------------------------------------------------
class TestSeededJitter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(max_retries=5, backoff_base=0.1, backoff_max=10.0)
        assert [policy.delay(i) for i in range(4)] == pytest.approx(
            [0.0, 0.1, 0.2, 0.4]
        )

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base=0.1, backoff_max=10.0,
            jitter=0.5, jitter_seed=7,
        )
        for failures in (1, 2, 3):
            base = 0.1 * 2 ** (failures - 1)
            d1 = policy.delay(failures, token="task-a")
            d2 = policy.delay(failures, token="task-a")
            assert d1 == d2  # same schedule every time
            assert base * 0.5 <= d1 <= base  # bounded shrink, never grow

    def test_schedule_varies_by_seed_token_and_attempt(self):
        kw = dict(max_retries=5, backoff_base=0.1, jitter=0.5)
        a = RetryPolicy(jitter_seed=1, **kw)
        b = RetryPolicy(jitter_seed=2, **kw)
        assert a.delay(1, token="t") != b.delay(1, token="t")
        assert a.delay(1, token="t1") != a.delay(1, token="t2")
        # Attempts are decorrelated too (not one scale factor reused).
        assert a.delay(1, token="t") * 2 != pytest.approx(a.delay(2, token="t"))

    def test_jitter_without_token_still_works(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=1.0, jitter_seed=3)
        assert 0.0 <= policy.delay(1) <= 0.1


# -- two executors, one journal -----------------------------------------------
class TestSharedJournalDrain:
    def _journal_tasks(self, n):
        return [
            Task(
                key=f"t{i}",
                fn=_square,
                args=(i,),
                journal_key=f"jk{i}",
            )
            for i in range(n)
        ]

    def test_two_executors_complete_grid_exactly_once(self, tmp_path):
        """Satellite contract: two executors draining the same grid via
        a shared journal complete every point exactly once, with
        results bit-identical to a lone serial run."""
        path = tmp_path / "shared.jsonl"
        n = 12
        serial = [o.value for o in ParallelExecutor(workers=0).run(self._journal_tasks(n))]

        results = {}
        errors = []

        def drain(name):
            try:
                journal = RunJournal(path)
                executor = ParallelExecutor(workers=0, journal=journal)
                outcomes = executor.run(self._journal_tasks(n))
                results[name] = [o.value for o in outcomes]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=drain, args=(name,)) for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # Both drains observed the full, identical result set...
        assert results["a"] == results["b"] == serial
        # ...and the journal holds each point exactly once.
        final = RunJournal(path)
        assert len(final) == n
        assert len(path.read_text().splitlines()) == n
        assert final.dropped_lines == 0

    def test_second_executor_replays_instead_of_recomputing(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        first = RunJournal(path)
        ParallelExecutor(workers=0, journal=first).run(self._journal_tasks(6))

        executed = []

        def traced(x):
            executed.append(x)
            return x * x

        tasks = [
            Task(key=f"t{i}", fn=traced, args=(i,), journal_key=f"jk{i}")
            for i in range(6)
        ]
        second = RunJournal(path)
        outcomes = ParallelExecutor(workers=0, journal=second).run(tasks)
        assert executed == []  # pure replay
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert second.skipped == 6

    def test_sibling_progress_picked_up_mid_run(self, tmp_path):
        """An executor's per-task journal check sees entries a sibling
        process appended *after* this executor loaded the journal."""
        path = tmp_path / "shared.jsonl"
        mine = RunJournal(path)

        sibling = RunJournal(path)

        executed = []

        def traced(x):
            # While "running" task 0, a sibling finishes tasks 3..5.
            if x == 0:
                for i in (3, 4, 5):
                    sibling.record(f"jk{i}", i * i)
            executed.append(x)
            return x * x

        tasks = [
            Task(key=f"t{i}", fn=traced, args=(i,), journal_key=f"jk{i}")
            for i in range(6)
        ]
        outcomes = ParallelExecutor(workers=0, journal=mine).run(tasks)
        assert executed == [0, 1, 2]  # 3..5 replayed from the sibling
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
