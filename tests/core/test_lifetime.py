"""Unit tests for the lifetime simulation engine."""

import pytest

from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
from repro.exceptions import ConfigurationError
from repro.mapping import MappedNetwork
from repro.tuning import TuningConfig


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(apps_per_window=0), dict(drift_magnitude=-0.1), dict(max_windows=0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            LifetimeConfig(**kwargs)

    def test_default_tuning_created(self):
        assert LifetimeConfig().tuning.max_iterations == 150

    def test_default_configs_share_no_mutable_state(self):
        """Regression (ISSUE 4): the tuning default must come from a
        ``default_factory``, not a shared sentinel — mutating one
        config's TuningConfig must never leak into another."""
        a = LifetimeConfig()
        b = LifetimeConfig()
        assert a.tuning is not b.tuning
        a.tuning.max_iterations = 7
        assert b.tuning.max_iterations == 150

    def test_explicit_none_tuning_still_tolerated(self):
        cfg = LifetimeConfig(tuning=None)
        assert cfg.tuning.max_iterations == 150


class TestSimulator:
    @pytest.fixture()
    def simulator(self, trained_mlp, device_config, blob_dataset):
        network = MappedNetwork(trained_mlp, device_config, seed=41)
        network.map_network()
        config = LifetimeConfig(
            apps_per_window=1000,
            drift_magnitude=0.05,
            max_windows=5,
            tuning=TuningConfig(target_accuracy=0.9, max_iterations=20),
        )
        return LifetimeSimulator(
            network,
            blob_dataset.x_train[:96],
            blob_dataset.y_train[:96],
            config=config,
            seed=42,
        )

    def test_survives_horizon_on_easy_task(self, simulator):
        result = simulator.run("t+t")
        assert not result.failed
        assert result.lifetime_applications == 5000
        assert len(result.windows) == 5

    def test_window_records_are_complete(self, simulator):
        result = simulator.run("t+t")
        for i, window in enumerate(result.windows):
            assert window.window_index == i
            assert window.applications_total == (i + 1) * 1000
            assert window.converged
            assert window.aged_upper_by_layer
            assert window.pulses_total >= 0

    def test_pulses_accumulate_across_windows(self, simulator):
        result = simulator.run("t+t")
        pulses = [w.pulses_total for w in result.windows]
        assert pulses == sorted(pulses)
        assert pulses[-1] > 0

    def test_failure_on_impossible_target(self, trained_mlp, device_config, blob_dataset, rng):
        network = MappedNetwork(trained_mlp, device_config, seed=43)
        network.map_network()
        y_shuffled = blob_dataset.y_train[:96][rng.permutation(96)]
        config = LifetimeConfig(
            apps_per_window=1000,
            max_windows=5,
            tuning=TuningConfig(target_accuracy=0.99, max_iterations=5),
        )
        sim = LifetimeSimulator(
            network, blob_dataset.x_train[:96], y_shuffled, config=config, seed=44
        )
        result = sim.run("t+t")
        assert result.failed
        assert result.lifetime_applications == 0  # first window already fails
        assert len(result.windows) == 1

    def test_aging_aware_mode_runs(self, trained_mlp, device_config, blob_dataset):
        network = MappedNetwork(trained_mlp, device_config, seed=45)
        network.map_network()
        config = LifetimeConfig(
            apps_per_window=1000,
            max_windows=3,
            tuning=TuningConfig(target_accuracy=0.9, max_iterations=20),
        )
        sim = LifetimeSimulator(
            network,
            blob_dataset.x_train[:96],
            blob_dataset.y_train[:96],
            config=config,
            aging_aware=True,
            seed=46,
        )
        result = sim.run("st+at")
        assert len(result.windows) == 3
        assert not result.failed

    def test_aged_upper_bounds_decline(self, simulator):
        result = simulator.run("t+t")
        trace = result.layer_aging_trace()[0]
        assert trace[-1] <= trace[0]
