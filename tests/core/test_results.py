"""Unit tests for lifetime result records."""

import pytest

from repro.core.results import LifetimeResult, ScenarioComparison, WindowRecord


def make_result(key, lifetime, iters, failed=True):
    result = LifetimeResult(scenario_key=key, lifetime_applications=lifetime, failed=failed)
    for i, it in enumerate(iters):
        result.windows.append(
            WindowRecord(
                window_index=i,
                applications_total=(i + 1) * 1000,
                tuning_iterations=it,
                converged=(i < len(iters) - 1) or not failed,
                accuracy_after=0.9,
                pulses_total=i * 100,
                dead_fraction=0.0,
                aged_upper_by_layer={0: 1e5 - i * 1e3, 2: 1e5 - i * 500},
            )
        )
    return result


class TestLifetimeResult:
    def test_iteration_trace(self):
        result = make_result("t+t", 3000, [2, 5, 150])
        assert result.iteration_trace() == [2, 5, 150]

    def test_windows_survived(self):
        result = make_result("t+t", 3000, [2, 5, 150])
        assert result.windows_survived == 2

    def test_layer_aging_trace(self):
        result = make_result("t+t", 2000, [1, 2])
        traces = result.layer_aging_trace()
        assert set(traces) == {0, 2}
        assert len(traces[0]) == 2
        assert traces[0][1] < traces[0][0]


class TestScenarioComparison:
    def test_improvement_ratios(self):
        cmp = ScenarioComparison(workload="glyphs")
        cmp.add(make_result("t+t", 1000, [150]))
        cmp.add(make_result("st+t", 5000, [150]))
        cmp.add(make_result("st+at", 8000, [150]))
        assert cmp.improvement("t+t") == pytest.approx(1.0)
        assert cmp.improvement("st+t") == pytest.approx(5.0)
        assert cmp.improvement("st+at") == pytest.approx(8.0)

    def test_missing_returns_none(self):
        cmp = ScenarioComparison(workload="x")
        assert cmp.improvement("st+t") is None

    def test_zero_baseline_is_inf(self):
        cmp = ScenarioComparison(workload="x")
        cmp.add(make_result("t+t", 0, [150]))
        cmp.add(make_result("st+t", 100, [150]))
        assert cmp.improvement("st+t") == float("inf")

    def test_lifetime_lookup(self):
        cmp = ScenarioComparison(workload="x")
        cmp.add(make_result("t+t", 1234, [150]))
        assert cmp.lifetime("t+t") == 1234
