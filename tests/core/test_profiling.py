"""Unit tests for the perf-counter registry."""

import json

import pytest

from repro.core.profiling import PROFILER, PerfRegistry


@pytest.fixture()
def registry():
    return PerfRegistry()


class TestCounters:
    def test_increment_and_read(self, registry):
        registry.increment("a")
        registry.increment("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_snapshot_is_a_copy(self, registry):
        registry.increment("a")
        snap = registry.snapshot()
        registry.increment("a")
        assert snap["counters"]["a"] == 1

    def test_reset(self, registry):
        registry.increment("a")
        with registry.timer("t"):
            pass
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "timers": {}}


class TestTimers:
    def test_timer_aggregates_calls(self, registry):
        for _ in range(3):
            with registry.timer("t"):
                pass
        snap = registry.snapshot()
        assert snap["timers"]["t"]["calls"] == 3
        assert snap["timers"]["t"]["total_s"] >= 0.0

    def test_timer_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.timer("t"):
                raise RuntimeError("boom")
        assert registry.snapshot()["timers"]["t"]["calls"] == 1

    def test_add_time_direct(self, registry):
        registry.add_time("t", 0.5)
        registry.add_time("t", 0.25)
        entry = registry.snapshot()["timers"]["t"]
        assert entry == {"calls": 2, "total_s": 0.75}


class TestCapture:
    def test_capture_diffs_counters(self, registry):
        registry.increment("a", 10)
        with registry.capture() as delta:
            registry.increment("a", 2)
            registry.increment("b")
        assert delta.counters == {"a": 2, "b": 1}
        assert delta.elapsed_s >= 0.0

    def test_capture_ignores_untouched_names(self, registry):
        registry.increment("a")
        with registry.capture() as delta:
            pass
        assert delta.counters == {}
        assert delta.timers == {}

    def test_capture_diffs_timers(self, registry):
        with registry.timer("t"):
            pass
        with registry.capture() as delta:
            with registry.timer("t"):
                pass
        assert delta.timers["t"]["calls"] == 1

    def test_nested_captures(self, registry):
        with registry.capture() as outer:
            registry.increment("a")
            with registry.capture() as inner:
                registry.increment("a")
        assert inner.counters == {"a": 1}
        assert outer.counters == {"a": 2}

    def test_to_dict_round_trips_json(self, registry):
        with registry.capture() as delta:
            registry.increment("a")
        encoded = json.dumps(delta.to_dict())
        assert json.loads(encoded)["counters"]["a"] == 1


class TestExport:
    def test_export_json(self, registry, tmp_path):
        registry.increment("a", 3)
        path = tmp_path / "perf.json"
        registry.export_json(str(path))
        assert json.loads(path.read_text())["counters"]["a"] == 3

    def test_render_text_empty(self, registry):
        assert "(empty)" in registry.render_text()

    def test_render_text_lists_counters_and_timers(self, registry):
        registry.increment("kernels.factorizations", 2)
        with registry.timer("kernels.factorize"):
            pass
        text = registry.render_text()
        assert "kernels.factorizations" in text
        assert "kernels.factorize" in text
        assert "1 calls" in text


class TestGlobalRegistry:
    def test_module_global_exists(self):
        PROFILER.increment("test.profiling.global")
        assert PROFILER.counter("test.profiling.global") >= 1


class TestVectorizedPathCounters:
    def test_lifetime_window_pulse_counters_match_network_delta(
        self, trained_mlp, blob_dataset
    ):
        """A profiled lifetime window reports the batched-path pulse
        counters (ISSUE 6), and their sum accounts for every pulse the
        network fired: ``programming.batched`` (map/remap programming)
        plus ``tuning.batched_pulses`` (tuning sweeps) equals the
        ``network.total_pulses()`` delta across the run."""
        from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
        from repro.device import DeviceConfig
        from repro.mapping import MappedNetwork
        from repro.tuning import TuningConfig

        # Coarse quantization keeps the mapped accuracy below target at
        # every remap, so each window really runs tuning sweeps.
        device = DeviceConfig(
            n_levels=4, pulses_to_collapse=100, write_noise=0.1, read_noise=0.0
        )
        network = MappedNetwork(trained_mlp, device, seed=41)
        network.map_network()
        sim = LifetimeSimulator(
            network,
            blob_dataset.x_train[:96],
            blob_dataset.y_train[:96],
            config=LifetimeConfig(
                apps_per_window=1000,
                drift_magnitude=0.4,
                max_windows=2,
                tuning=TuningConfig(target_accuracy=0.99, max_iterations=10),
            ),
            seed=42,
        )
        pulses_before = network.total_pulses()
        with PROFILER.capture() as delta:
            sim.run("t+t")
        pulses_delta = network.total_pulses() - pulses_before

        assert pulses_delta > 0
        assert "programming.batched" in delta.counters
        assert "tuning.batched_pulses" in delta.counters
        assert (
            delta.counters["programming.batched"]
            + delta.counters["tuning.batched_pulses"]
            == pulses_delta
        )
