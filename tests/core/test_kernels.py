"""Unit tests for the hot-path kernel layer (DESIGN.md §9).

Covers the NodalSolver equivalences, the FactorizationCache protocol,
and the Crossbar state-version integration: every mutating operation
must bump the version and invalidate the cached conductances and
factorization, while pure reads must not.
"""

import numpy as np
import pytest

from repro.core.kernels import (
    FactorizationCache,
    NodalSolver,
    assemble_nodal_matrix,
    cache_enabled,
    set_cache_enabled,
)
from repro.core.profiling import PROFILER
from repro.crossbar import Crossbar
from repro.crossbar.parasitics import ParasiticModel, solve_crossbar_nodal
from repro.device import DeviceConfig
from repro.device.faults import FaultModel, inject_faults
from repro.exceptions import ConfigurationError, ShapeError


@pytest.fixture()
def small_g(rng):
    return rng.uniform(1e-5, 1e-4, size=(6, 5))


@pytest.fixture()
def caches_off():
    prior = set_cache_enabled(False)
    yield
    set_cache_enabled(prior)


class TestNodalSolver:
    def test_transfer_matrix_shape_and_readonly(self, small_g):
        solver = NodalSolver(small_g, 10.0)
        assert solver.transfer_matrix.shape == (6, 5)
        with pytest.raises(ValueError):
            solver.transfer_matrix[0, 0] = 1.0

    def test_zero_wire_is_ideal(self, small_g, rng):
        solver = NodalSolver(small_g, 0.0)
        v = rng.uniform(0, 1, 6)
        np.testing.assert_allclose(solver.solve(v), v @ small_g)

    def test_matches_reference_solver(self, small_g, rng):
        v = rng.uniform(0, 1, 6)
        solver = NodalSolver(small_g, 15.0)
        np.testing.assert_array_equal(
            solver.solve(v), solve_crossbar_nodal(small_g, v, ParasiticModel(15.0))
        )

    def test_batch_is_bitwise_row_stable(self, small_g, rng):
        solver = NodalSolver(small_g, 8.0)
        v_batch = rng.uniform(0, 1, size=(10, 6))
        batched = solver.solve(v_batch)
        for k in range(10):
            np.testing.assert_array_equal(batched[k], solver.solve(v_batch[k]))

    def test_single_vector_returns_1d(self, small_g, rng):
        solver = NodalSolver(small_g, 5.0)
        assert solver.solve(rng.uniform(0, 1, 6)).shape == (5,)
        assert solver.solve(rng.uniform(0, 1, (3, 6))).shape == (3, 5)

    def test_validation(self, small_g):
        with pytest.raises(ShapeError):
            NodalSolver(np.ones(4), 1.0)
        with pytest.raises(ConfigurationError):
            NodalSolver(small_g, -1.0)
        with pytest.raises(ShapeError):
            NodalSolver(small_g, 1.0).solve(np.ones(4))

    def test_assembled_matrix_is_symmetric(self, small_g):
        a = assemble_nodal_matrix(small_g, 0.1).toarray()
        np.testing.assert_allclose(a, a.T)


class TestFactorizationCache:
    def test_hit_on_same_version(self, small_g):
        cache = FactorizationCache()
        builds = []

        def build():
            builds.append(1)
            return NodalSolver(small_g, 5.0)

        s1 = cache.get(3, 5.0, build)
        s2 = cache.get(3, 5.0, build)
        assert s1 is s2
        assert len(builds) == 1

    def test_rebuild_on_version_change(self, small_g):
        cache = FactorizationCache()
        s1 = cache.get(1, 5.0, lambda: NodalSolver(small_g, 5.0))
        s2 = cache.get(2, 5.0, lambda: NodalSolver(small_g, 5.0))
        assert s1 is not s2

    def test_separate_slots_per_r_wire(self, small_g):
        cache = FactorizationCache()
        cache.get(1, 5.0, lambda: NodalSolver(small_g, 5.0))
        cache.get(1, 9.0, lambda: NodalSolver(small_g, 9.0))
        assert len(cache) == 2

    def test_invalidate_clears(self, small_g):
        cache = FactorizationCache()
        cache.get(1, 5.0, lambda: NodalSolver(small_g, 5.0))
        cache.invalidate()
        assert len(cache) == 0

    def test_disabled_cache_rebuilds(self, small_g, caches_off):
        cache = FactorizationCache()
        s1 = cache.get(1, 5.0, lambda: NodalSolver(small_g, 5.0))
        s2 = cache.get(1, 5.0, lambda: NodalSolver(small_g, 5.0))
        assert s1 is not s2
        assert len(cache) == 0


class TestCrossbarStateVersion:
    def make(self, **kwargs):
        cfg = DeviceConfig(pulses_to_collapse=500, **kwargs)
        return Crossbar(4, 4, cfg, seed=3)

    def test_every_mutation_bumps_version(self):
        xb = self.make(write_noise=0.1)
        v0 = xb.state_version
        xb.program(np.full((4, 4), 5e4))
        v1 = xb.state_version
        assert v1 > v0
        xb.step_levels(np.ones((4, 4), dtype=int))
        v2 = xb.state_version
        assert v2 > v1
        xb.step_conductance(np.ones((4, 4), dtype=int))
        v3 = xb.state_version
        assert v3 > v2
        xb.apply_drift(0.05)
        v4 = xb.state_version
        assert v4 > v3
        inject_faults(xb, FaultModel(rate_lrs=0.2), seed=1)
        assert xb.state_version > v4

    def test_reads_do_not_bump_version(self):
        xb = self.make()
        xb.program(np.full((4, 4), 5e4))
        version = xb.state_version
        xb.conductances()
        xb.read_conductances()
        xb.read_resistances()
        xb.vmm(np.ones(4))
        xb.vmm_ir_drop(np.ones(4), ParasiticModel(5.0), exact=True)
        xb.nodal_solver(ParasiticModel(5.0))
        assert xb.state_version == version

    def test_conductance_cache_hit_and_invalidation(self):
        xb = self.make()
        xb.program(np.full((4, 4), 5e4))
        g1 = xb.conductances()
        g2 = xb.conductances()
        assert g1 is g2  # cached object between mutations
        xb.apply_drift(0.05)
        g3 = xb.conductances()
        assert g3 is not g1
        np.testing.assert_array_equal(g3, 1.0 / xb.resistance)

    def test_cached_conductances_are_correct_and_readonly(self):
        xb = self.make()
        xb.program(np.full((4, 4), 5e4))
        g = xb.conductances()
        np.testing.assert_array_equal(g, 1.0 / xb.resistance)
        with pytest.raises(ValueError):
            g[0, 0] = 1.0

    def test_solver_cache_reused_until_mutation(self):
        xb = self.make()
        xb.program(np.full((4, 4), 5e4))
        model = ParasiticModel(5.0)
        s1 = xb.nodal_solver(model)
        assert xb.nodal_solver(model) is s1
        xb.step_levels(np.ones((4, 4), dtype=int))
        assert xb.nodal_solver(model) is not s1

    def test_mark_state_dirty_invalidates(self):
        xb = self.make()
        xb.program(np.full((4, 4), 5e4))
        g1 = xb.conductances()
        xb.resistance[...] = 6e4  # in-place edit bypasses the setter
        xb.mark_state_dirty()
        g2 = xb.conductances()
        assert g2 is not g1
        np.testing.assert_array_equal(g2, 1.0 / xb.resistance)

    def test_cache_disabled_is_bitwise_identical(self, caches_off):
        xb_off = self.make()
        xb_off.program(np.full((4, 4), 5e4))
        out_off = xb_off.vmm_ir_drop(np.ones(4), ParasiticModel(5.0), exact=True)
        g_off = xb_off.conductances().copy()
        set_cache_enabled(True)
        xb_on = self.make()
        xb_on.program(np.full((4, 4), 5e4))
        out_on = xb_on.vmm_ir_drop(np.ones(4), ParasiticModel(5.0), exact=True)
        np.testing.assert_array_equal(out_on, out_off)
        np.testing.assert_array_equal(xb_on.conductances(), g_off)

    def test_noisy_reads_bypass_cache(self):
        xb = self.make(read_noise=0.05)
        xb.program(np.full((4, 4), 5e4))
        r1 = xb.read_conductances()
        r2 = xb.read_conductances()
        assert not np.array_equal(r1, r2)  # fresh noise per read

    def test_fault_noise_injection_bypasses_cache(self):
        xb = self.make()
        xb.program(np.full((4, 4), 5e4))
        xb.conductances()
        xb.read_noise_extra = 0.05  # fault schedule turns noise on
        r1 = xb.read_conductances()
        r2 = xb.read_conductances()
        assert not np.array_equal(r1, r2)

    def test_caching_preserves_rng_stream(self):
        """Reads draw no RNG, so interleaving them must not perturb any
        random stream — the property that keeps goldens identical."""

        def run(with_reads: bool) -> np.ndarray:
            xb = self.make(write_noise=0.1)
            xb.program(np.full((4, 4), 5e4))
            if with_reads:
                xb.conductances()
                xb.vmm(np.ones(4))
                xb.nodal_solver(ParasiticModel(5.0))
            xb.apply_drift(0.05)
            xb.step_levels(np.ones((4, 4), dtype=int))
            return xb.resistance.copy()

        np.testing.assert_array_equal(run(True), run(False))

    def test_vmm_counter_increments(self):
        xb = self.make()
        xb.program(np.full((4, 4), 5e4))
        before = PROFILER.counter("crossbar.vmm_calls")
        xb.vmm(np.ones(4))
        assert PROFILER.counter("crossbar.vmm_calls") == before + 1


class TestCacheToggle:
    def test_toggle_returns_prior(self):
        assert cache_enabled()
        prior = set_cache_enabled(False)
        assert prior is True
        assert not cache_enabled()
        set_cache_enabled(True)
        assert cache_enabled()
