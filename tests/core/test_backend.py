"""Cross-backend battery for :mod:`repro.core.backend` (DESIGN.md §14).

Three tiers of guarantees, matching the backend contract:

* **Host path is bitwise golden.**  With the numpy backend active every
  dispatch helper must execute exactly the pre-backend numpy
  expression, so results are bit-identical to direct numpy — asserted
  with ``assert_array_equal`` over Hypothesis-generated operands.
* **The dispatch machinery preserves values.**  A fake accelerator
  backend (numpy arrays wearing ``is_host=False``) forces every
  boundary crossing, device-cache and conversion-counter code path
  while computing with the same numpy kernels — so the full dispatch
  plumbing is exercised bitwise on torch-less installs.
* **Torch agrees within documented tolerances.**  When torch is
  importable, the same operands run through the torch backend and must
  agree within ``rtol=1e-10`` at float64 (same IEEE arithmetic,
  different summation order).  Skipped cleanly when torch is absent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import backend
from repro.core.backend import (
    HOST,
    ArrayBackend,
    BackendUnavailableError,
    DeviceArrayCache,
    NumpyBackend,
    gemm,
    hxp,
)
from repro.core.kernels import NodalSolver
from repro.core.profiling import PROFILER
from repro.crossbar.crossbar import Crossbar
from repro.crossbar.parasitics import ParasiticModel, vmm_with_ir_drop
from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError

TORCH_AVAILABLE = backend.backend_available("torch")
needs_torch = pytest.mark.skipif(not TORCH_AVAILABLE, reason="torch not installed")

#: Documented float64 torch tolerance (DESIGN.md §14): identical IEEE
#: arithmetic, different reduction order.
TORCH_RTOL = 1e-10


class FakeDeviceBackend(NumpyBackend):
    """Numpy compute wearing an accelerator's interface.

    ``is_host = False`` routes every dispatch point through the
    boundary converters, conversion counters and device caches while
    the arithmetic stays numpy — the device plumbing is therefore
    testable bitwise without torch.
    """

    name = "fake-device"
    is_host = False

    def asarray(self, x, dtype=None):
        # Copy, like a real transfer would: distinct object per crossing.
        host = np.array(x, dtype=dtype)
        self._count_to_device(int(host.size))
        return host

    def to_numpy(self, x):
        out = np.asarray(x)
        self._count_to_host(int(out.size))
        return out


@pytest.fixture
def fake_device():
    with backend.using(FakeDeviceBackend()) as bk:
        yield bk


def seeded(seed, *shape):
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=shape)


shapes = st.tuples(st.integers(1, 24), st.integers(1, 24), st.integers(1, 24))
seeds = st.integers(0, 2**31 - 1)


class TestRegistry:
    def test_default_is_numpy_host(self):
        bk = backend.active()
        assert bk.is_host and bk.name == "numpy"
        assert bk is HOST

    def test_make_backend_passthrough_and_specs(self):
        fake = FakeDeviceBackend()
        assert backend.make_backend(fake) is fake
        assert backend.make_backend("numpy") is HOST
        assert backend.make_backend("") is HOST
        with pytest.raises(ConfigurationError):
            backend.make_backend("cupy")

    def test_use_returns_prior_and_using_restores(self):
        before = backend.active()
        with backend.using(FakeDeviceBackend()) as bk:
            assert backend.active() is bk
            assert not backend.active().is_host
        assert backend.active() is before

    def test_backend_available(self):
        assert backend.backend_available("numpy")
        assert backend.backend_available("torch") == TORCH_AVAILABLE

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setattr(backend, "_ACTIVE", None)
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert backend.active() is HOST

    def test_torch_unavailable_raises_cleanly(self):
        if TORCH_AVAILABLE:
            pytest.skip("torch installed; absence path not reachable")
        with pytest.raises(BackendUnavailableError):
            backend.make_backend("torch")

    def test_rng_adapter_is_host_stream(self):
        # Backends never own randomness: the rng adapter returns the
        # same host generator stream regardless of placement.
        host_draws = HOST.rng(123).random(8)
        fake_draws = FakeDeviceBackend().rng(123).random(8)
        np.testing.assert_array_equal(host_draws, fake_draws)


class TestHostBitwise:
    """Numpy-vs-numpy: the shim must be invisible on the host path."""

    @given(dims=shapes, seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_gemm_is_matmul_bitwise(self, dims, seed):
        m, k, n = dims
        a, b = seeded(seed, m, k), seeded(seed + 1, k, n)
        np.testing.assert_array_equal(gemm(a, b), a @ b)

    @given(dims=shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_host_entry_points_bitwise(self, dims, seed):
        m, k, n = dims
        a, b = seeded(seed, m, k), seeded(seed + 1, k, n)
        np.testing.assert_array_equal(HOST.matmul(a, b), np.matmul(a, b))
        np.testing.assert_array_equal(
            HOST.einsum("bi,ij->bj", a, b), np.einsum("bi,ij->bj", a, b)
        )
        sq = seeded(seed + 2, k, k) + 3.0 * np.eye(k)
        rhs = seeded(seed + 3, k, n)
        np.testing.assert_array_equal(HOST.solve(sq, rhs), np.linalg.solve(sq, rhs))
        lu = HOST.lu_factor(sq)
        np.testing.assert_allclose(HOST.lu_solve(lu, rhs), np.linalg.solve(sq, rhs))

    def test_hxp_is_numpy(self):
        # The host namespace re-export *is* numpy: anything legal on a
        # pre-backend module is legal on a ported one, bit for bit.
        assert hxp is np


class TestFakeDeviceDispatch:
    """The full device plumbing, exercised bitwise without torch."""

    @given(dims=shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_gemm_round_trip_bitwise(self, dims, seed):
        m, k, n = dims
        a, b = seeded(seed, m, k), seeded(seed + 1, k, n)
        with backend.using(FakeDeviceBackend()):
            out = gemm(a, b)
        np.testing.assert_array_equal(out, a @ b)

    def test_convert_counters_fire(self, fake_device):
        PROFILER.reset()
        a, b = seeded(0, 6, 5), seeded(1, 5, 4)
        gemm(a, b)
        assert PROFILER.counter("backend.convert.host_to_device") == 2
        assert PROFILER.counter("backend.convert.host_to_device_elements") == 30 + 20
        assert PROFILER.counter("backend.convert.device_to_host") == 1
        assert PROFILER.counter("backend.convert.device_to_host_elements") == 24

    def test_device_array_cache_hits_per_version(self, fake_device):
        cache = DeviceArrayCache()
        host = seeded(2, 4, 4)
        first = cache.get(fake_device, 0, host)
        again = cache.get(fake_device, 0, host)
        assert again is first
        rebuilt = cache.get(fake_device, 1, host)
        assert rebuilt is not first
        cache.invalidate()
        assert cache.get(fake_device, 1, host) is not rebuilt

    def test_device_array_cache_is_host_noop(self):
        cache = DeviceArrayCache()
        host = seeded(3, 4, 4)
        assert cache.get(HOST, 0, host) is host
        assert cache._slot is None

    def test_device_array_cache_pickles_empty(self, fake_device):
        import pickle

        cache = DeviceArrayCache()
        cache.get(fake_device, 0, seeded(4, 3, 3))
        restored = pickle.loads(pickle.dumps(cache))
        assert restored._slot is None

    def test_crossbar_vmm_bitwise_and_cached(self, fake_device):
        xbar = Crossbar(12, 9, DeviceConfig(read_noise=0.0), seed=11)
        v = seeded(5, 7, 12)
        expected = v @ xbar.conductances() * xbar.r_tia
        np.testing.assert_array_equal(xbar.vmm(v), expected)
        PROFILER.reset()
        xbar.vmm(v)
        assert PROFILER.counter("backend.device_cache_hits") == 1
        # A state mutation must drop the device copy with the host cache.
        xbar.program(xbar.resistance * 1.01)
        expected2 = v @ xbar.conductances() * xbar.r_tia
        np.testing.assert_array_equal(xbar.vmm(v), expected2)

    def test_crossbar_noisy_read_never_device_cached(self, fake_device):
        xbar = Crossbar(6, 6, DeviceConfig(read_noise=0.05), seed=11)
        v = seeded(6, 6)
        xbar.vmm(v)
        assert xbar._device_g_cache._slot is None

    def test_nodal_solver_bitwise(self, fake_device):
        g = 1e-4 * (1.0 + 0.2 * np.abs(seeded(7, 10, 8))) + 1e-6
        solver = NodalSolver(g, r_wire=2.0)
        v = seeded(8, 5, 10)
        with backend.using(HOST):
            reference = solver.solve(v)
        np.testing.assert_array_equal(solver.solve(v), reference)

    def test_parasitics_approx_bitwise(self, fake_device):
        g = np.abs(seeded(9, 8, 6)) * 1e-4 + 1e-6
        v = seeded(10, 4, 8)
        model = ParasiticModel(r_wire=5.0)
        with backend.using(HOST):
            reference = vmm_with_ir_drop(g, v, model)
        np.testing.assert_array_equal(vmm_with_ir_drop(g, v, model), reference)


@needs_torch
class TestTorchBackend:
    """Numpy-vs-torch within documented tolerances (float64)."""

    @given(dims=shapes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_gemm_within_tolerance(self, dims, seed):
        m, k, n = dims
        a, b = seeded(seed, m, k), seeded(seed + 1, k, n)
        with backend.using("torch"):
            out = gemm(a, b)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, a @ b, rtol=TORCH_RTOL, atol=1e-12)

    @given(dims=shapes, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_einsum_solve_within_tolerance(self, dims, seed):
        m, k, n = dims
        a, b = seeded(seed, m, k), seeded(seed + 1, k, n)
        bk = backend.make_backend("torch")
        np.testing.assert_allclose(
            bk.to_numpy(bk.einsum("bi,ij->bj", a, b)),
            np.einsum("bi,ij->bj", a, b),
            rtol=TORCH_RTOL,
            atol=1e-12,
        )
        sq = seeded(seed + 2, k, k) + 3.0 * np.eye(k)
        rhs = seeded(seed + 3, k, n)
        np.testing.assert_allclose(
            bk.to_numpy(bk.solve(sq, rhs)),
            np.linalg.solve(sq, rhs),
            rtol=1e-8,
            atol=1e-10,
        )
        np.testing.assert_allclose(
            bk.to_numpy(bk.lu_solve(bk.lu_factor(sq), rhs)),
            np.linalg.solve(sq, rhs),
            rtol=1e-8,
            atol=1e-10,
        )

    def test_namespace_ops_match_numpy(self):
        bk = backend.make_backend("torch")
        xp = bk.xp
        a = seeded(11, 5, 7)
        cases = [
            (xp.clip(a, -0.5, 0.5), np.clip(a, -0.5, 0.5)),
            (xp.maximum(a, 0.0), np.maximum(a, 0.0)),
            (xp.tanh(a), np.tanh(a)),
            (xp.sum(a, axis=1), np.sum(a, axis=1)),
            (xp.mean(a, axis=0, keepdims=True), np.mean(a, axis=0, keepdims=True)),
            (xp.max(a, axis=1), np.max(a, axis=1)),
            (xp.argmax(a, axis=1), np.argmax(a, axis=1)),
            (xp.transpose(a), a.T),
            (xp.reshape(a, (7, 5)), a.reshape(7, 5)),
            (xp.where(a > 0, a, 0.0), np.where(a > 0, a, 0.0)),
            (
                xp.pad(a, ((1, 2), (0, 3))),
                np.pad(a, ((1, 2), (0, 3))),
            ),
            (xp.concatenate([a, a], axis=1), np.concatenate([a, a], axis=1)),
            (xp.stack([a, a]), np.stack([a, a])),
        ]
        for got, want in cases:
            np.testing.assert_allclose(bk.to_numpy(got), want, rtol=TORCH_RTOL)

    def test_crossbar_vmm_within_tolerance(self):
        xbar = Crossbar(16, 12, DeviceConfig(read_noise=0.0), seed=13)
        v = seeded(12, 6, 16)
        reference = xbar.vmm(v)
        with backend.using("torch"):
            out = xbar.vmm(v)
        np.testing.assert_allclose(out, reference, rtol=TORCH_RTOL, atol=1e-12)

    def test_state_is_host_side_and_identical(self):
        # Device state evolution never moves off the host: a programming
        # sequence under the torch backend leaves bit-identical state.
        def run():
            xbar = Crossbar(8, 8, DeviceConfig(write_noise=0.1), seed=17)
            xbar.program(xbar.resistance * 0.7)
            xbar.step_levels(np.sign(seeded(13, 8, 8)).astype(int))
            return xbar.resistance, xbar.stress_time, xbar._rng.random(4)

        r_host, s_host, draws_host = run()
        with backend.using("torch"):
            r_dev, s_dev, draws_dev = run()
        np.testing.assert_array_equal(r_dev, r_host)
        np.testing.assert_array_equal(s_dev, s_host)
        np.testing.assert_array_equal(draws_dev, draws_host)

    def test_dtype_policy_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_DTYPE", "float32")
        bk = backend.make_backend("torch")
        a, b = seeded(14, 9, 9), seeded(15, 9, 9)
        with backend.using(bk):
            out = gemm(a, b)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-5)
        monkeypatch.setenv("REPRO_BACKEND_DTYPE", "float16")
        with pytest.raises(ConfigurationError):
            backend.make_backend("torch")
