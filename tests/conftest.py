"""Shared fixtures for the test suite.

Everything is seeded and sized for speed: the full suite must run in a
couple of minutes on one CPU core, so fixtures build the smallest
objects that still exercise real behaviour (e.g. a trained MLP rather
than an untrained one, a crossbar big enough to have interior 3x3
blocks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crossbar import Crossbar
from repro.data import make_blobs, make_glyph_digits
from repro.device import DeviceConfig
from repro.mapping import MappedNetwork
from repro.nn import Activation, Adam, Dense, Sequential
from repro.training import TrainConfig, train_baseline


@pytest.fixture(scope="session")
def blob_dataset():
    """A small, linearly separable 3-class vector dataset."""
    return make_blobs(n_samples=240, n_classes=3, n_features=4, spread=0.4, seed=3)


@pytest.fixture(scope="session")
def glyph_dataset():
    """A small glyph-digit image dataset (10 classes, 12x12)."""
    return make_glyph_digits(n_train=300, n_test=100, seed=7)


@pytest.fixture(scope="session")
def trained_mlp(blob_dataset):
    """An MLP trained to high accuracy on the blob dataset."""
    model = Sequential(
        [Dense(16), Activation("relu"), Dense(3)],
        optimizer=Adam(0.01),
        seed=5,
    ).build((4,))
    train_baseline(model, blob_dataset, TrainConfig(epochs=25, l2_lambda=1e-4))
    return model


@pytest.fixture()
def device_config():
    """A deterministic (noise-free) device class with fast aging."""
    return DeviceConfig(pulses_to_collapse=100, write_noise=0.0, read_noise=0.0)


@pytest.fixture()
def noisy_device_config():
    """A device class with write noise and fast aging."""
    return DeviceConfig(pulses_to_collapse=100, write_noise=0.1, read_noise=0.01)


@pytest.fixture()
def small_crossbar(device_config):
    """A 9x9 deterministic crossbar (exactly 3x3 trace blocks)."""
    return Crossbar(9, 9, device_config, seed=11)


@pytest.fixture()
def mapped_mlp(trained_mlp, device_config):
    """The trained MLP mapped onto deterministic hardware (fresh map)."""
    network = MappedNetwork(trained_mlp, device_config, seed=13)
    network.map_network()
    return network


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
