"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    CrossbarFailure,
    DeviceError,
    ReproError,
    ShapeError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ConfigurationError, ConvergenceError, CrossbarFailure, DeviceError, ShapeError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        """Callers using plain ValueError handling still catch us."""
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ShapeError, ValueError)

    def test_runtime_family(self):
        assert issubclass(ConvergenceError, RuntimeError)
        assert issubclass(CrossbarFailure, RuntimeError)

    def test_crossbar_failure_carries_progress(self):
        failure = CrossbarFailure("dead", applications_completed=12345)
        assert failure.applications_completed == 12345
        assert "dead" in str(failure)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise DeviceError("boom")
