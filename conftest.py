"""Repository-level pytest configuration.

Lives at the rootdir so its command-line options are registered no
matter which test tree (``tests/`` or ``benchmarks/``) is collected.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden regression snapshots in "
        "tests/integration/golden/ with the current run's metrics "
        "(review the diff before committing; see CONTRIBUTING.md)",
    )
