"""Legacy setup shim.

This offline environment has no ``wheel`` package, so PEP 660 editable
installs fail; keeping a ``setup.py`` lets ``pip install -e . \
--no-build-isolation`` fall back to the classic ``setup.py develop``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
